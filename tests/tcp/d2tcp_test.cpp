#include <gtest/gtest.h>

#include "tcp/d2tcp.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp_test_util.hpp"

namespace trim::tcp {
namespace {

using test::HostPair;

TEST(D2tcp, NoDeadlineBehavesExactlyLikeDctcp) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::ecn_packets(100, 20)};
  TcpReceiver recv{&net.b, 1, net.a.id()};
  D2tcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  EXPECT_DOUBLE_EQ(sender.urgency(), 1.0);
  sender.write(2000 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(net.data_queue->stats().dropped, 0u);
  EXPECT_DOUBLE_EQ(sender.urgency(), 1.0);
  EXPECT_EQ(sender.protocol(), Protocol::kD2tcp);
}

TEST(D2tcp, UrgencyRisesAsDeadlineApproaches) {
  HostPair net;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  D2tcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(1000 * 1460);
  // Prime the RTT estimator and leave data outstanding.
  net.sim.run_until(sim::SimTime::millis(1));
  ASSERT_FALSE(sender.idle());

  sender.set_deadline(net.sim.now() + sim::SimTime::seconds(100.0));  // far
  const double far = sender.urgency();
  sender.set_deadline(net.sim.now() + sim::SimTime::millis(1));  // imminent
  const double near = sender.urgency();
  EXPECT_LT(far, near);
  EXPECT_GE(near, far);
  // Past deadline: maximum urgency.
  sender.set_deadline(net.sim.now() - sim::SimTime::millis(1));
  EXPECT_DOUBLE_EQ(sender.urgency(), 2.0);  // d_max default
  sender.clear_deadline();
  EXPECT_DOUBLE_EQ(sender.urgency(), 1.0);
  net.sim.run();
}

TEST(D2tcp, UrgencyIsClampedToConfiguredRange) {
  HostPair net;
  D2tcpConfig d2cfg;
  d2cfg.d_min = 0.25;
  d2cfg.d_max = 4.0;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  D2tcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}, d2cfg};
  sender.write(100 * 1460);
  net.sim.run_until(sim::SimTime::millis(1));
  sender.set_deadline(net.sim.now() + sim::SimTime::seconds(1000.0));
  EXPECT_GE(sender.urgency(), 0.25);
  sender.set_deadline(net.sim.now() + sim::SimTime::nanos(1));
  EXPECT_LE(sender.urgency(), 4.0);
  net.sim.run();
}

TEST(D2tcp, NearDeadlineFlowOutrunsFarDeadlineFlow) {
  // Two D2TCP flows share an ECN bottleneck; the near-deadline flow should
  // finish first because it backs off less on marks.
  HostPair net{1'000'000'000, sim::SimTime::micros(200),
               net::QueueConfig::ecn_packets(200, 20)};
  TcpReceiver recv1{&net.b, 1, net.a.id()};
  TcpReceiver recv2{&net.b, 2, net.a.id()};
  D2tcpSender near_flow{&net.a, net.b.id(), 1, TcpConfig{}};
  D2tcpSender far_flow{&net.a, net.b.id(), 2, TcpConfig{}};

  const std::uint64_t bytes = 2000 * 1460;
  near_flow.set_deadline(sim::SimTime::millis(15));
  far_flow.set_deadline(sim::SimTime::seconds(10.0));
  near_flow.write(bytes);
  far_flow.write(bytes);
  net.sim.run();

  ASSERT_TRUE(near_flow.idle());
  ASSERT_TRUE(far_flow.idle());
  const auto near_done = near_flow.stats().completed_message_times().at(0);
  const auto far_done = far_flow.stats().completed_message_times().at(0);
  EXPECT_LT(near_done, far_done);
}

}  // namespace
}  // namespace trim::tcp
