// Shared harness for transport tests: two directly linked hosts with a
// scriptable drop queue on the data path, so tests can lose precisely the
// segments they want to.
#pragma once

#include <memory>
#include <set>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/queue.hpp"
#include "sim/simulator.hpp"

namespace trim::test {

// DropTail queue that additionally drops selected data segments, once each.
class ScriptedDropQueue : public net::DropTailQueue {
 public:
  explicit ScriptedDropQueue(net::QueueConfig cfg) : DropTailQueue{cfg} {}

  void drop_segment_once(std::uint64_t seq) { to_drop_.insert(seq); }
  void drop_next_data(int n) { drop_next_ += n; }

  bool enqueue(net::Packet p) override {
    if (!p.is_ack) {
      if (drop_next_ > 0) {
        --drop_next_;
        drop(p);
        return false;
      }
      const auto it = to_drop_.find(p.seq);
      if (it != to_drop_.end()) {
        to_drop_.erase(it);
        drop(p);
        return false;
      }
    }
    // Honor an ECN marking threshold if the config carries one (so DCTCP
    // tests can use this scriptable queue as their bottleneck).
    if (cfg_.ecn_enabled() && p.ecn == net::EcnCodepoint::kEct) {
      const bool over_pkts = cfg_.ecn_threshold_packets != 0 &&
                             len_packets() >= cfg_.ecn_threshold_packets;
      const bool over_bytes = cfg_.ecn_threshold_bytes != 0 &&
                              len_bytes() + p.size_bytes() > cfg_.ecn_threshold_bytes;
      if (over_pkts || over_bytes) {
        p.ecn = net::EcnCodepoint::kCe;
        ++stats_.marked_ce;
      }
    }
    return DropTailQueue::enqueue(std::move(p));
  }

 private:
  std::multiset<std::uint64_t> to_drop_;
  int drop_next_ = 0;
};

// a --(data path, scriptable)--> b and b --(clean ack path)--> a.
struct HostPair {
  explicit HostPair(std::uint64_t bps = 1'000'000'000,
                    sim::SimTime delay = sim::SimTime::micros(50),
                    net::QueueConfig data_queue_cfg = net::QueueConfig{}) {
    auto dq = std::make_unique<ScriptedDropQueue>(data_queue_cfg);
    data_queue = dq.get();
    ab = std::make_unique<net::Link>(&sim, "a->b", bps, delay, std::move(dq));
    ba = std::make_unique<net::Link>(&sim, "b->a", bps, delay,
                                     net::make_queue(net::QueueConfig{}));
    ab->set_peer(&b);
    ba->set_peer(&a);
    a.attach_link(ab.get());
    b.attach_link(ba.get());
  }

  sim::Simulator sim;
  net::Host a{&sim, 0, "a"};
  net::Host b{&sim, 1, "b"};
  std::unique_ptr<net::Link> ab, ba;
  ScriptedDropQueue* data_queue = nullptr;
};

}  // namespace trim::test
