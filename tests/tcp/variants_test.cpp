#include <gtest/gtest.h>

#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/l2dct.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp_test_util.hpp"

namespace trim::tcp {
namespace {

using test::HostPair;

// ---------- protocol naming ----------

TEST(ProtocolNames, RoundTrip) {
  for (auto p : {Protocol::kReno, Protocol::kCubic, Protocol::kDctcp,
                 Protocol::kL2dct, Protocol::kTrim, Protocol::kVegas,
                 Protocol::kGip, Protocol::kD2tcp}) {
    EXPECT_EQ(protocol_from_string(to_string(p)), p);
  }
  EXPECT_THROW(protocol_from_string("bogus"), std::invalid_argument);
}

// ---------- CUBIC ----------

TEST(Cubic, DeliversAndRecoversFromLoss) {
  HostPair net;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  CubicSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  net.data_queue->drop_segment_once(40);
  sender.write(300 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(recv.delivered_bytes(), 300u * 1460);
  EXPECT_EQ(sender.stats().fast_retransmits, 1u);
  EXPECT_EQ(sender.protocol(), Protocol::kCubic);
}

TEST(Cubic, LossReducesByBetaNotHalf) {
  HostPair net;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  CubicSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  net.data_queue->drop_segment_once(60);
  sender.write(500 * 1460);
  net.sim.run();
  ASSERT_GT(sender.w_max(), 0.0);  // exactly one loss epoch was registered
  // ssthresh was set to beta * w_max at the (single) loss: 0.7, not 0.5.
  EXPECT_NEAR(sender.ssthresh() / sender.w_max(), 0.7, 0.01);
}

TEST(Cubic, GrowthAfterLossFollowsConcaveShape) {
  // After a reduction, CUBIC grows quickly at first and flattens near
  // w_max: check the window is monotonically nondecreasing between losses.
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::droptail_packets(50)};
  TcpReceiver recv{&net.b, 1, net.a.id()};
  CubicSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(5000 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(recv.delivered_bytes(), 5000u * 1460);
}

// ---------- DCTCP ----------

TEST(Dctcp, SetsEctOnDataPackets) {
  HostPair net;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  DctcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(10 * 1460);
  net.sim.run();
  // No marking queue on this path; just verify ECT capability is on.
  EXPECT_TRUE(sender.config().ecn_capable);
  EXPECT_EQ(recv.ce_marked_packets(), 0u);
}

TEST(Dctcp, HoldsQueueNearMarkingThresholdWithoutDrops) {
  // Bottleneck marks at 20 packets with a 100-packet buffer: DCTCP should
  // oscillate near K and never overflow.
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::ecn_packets(100, 20)};
  TcpReceiver recv{&net.b, 1, net.a.id()};
  DctcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(3000 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(net.data_queue->stats().dropped, 0u);
  EXPECT_GT(net.data_queue->stats().marked_ce, 0u);
  EXPECT_GT(sender.stats().ecn_marked_acks, 0u);
  // Alpha converged somewhere sane.
  EXPECT_GT(sender.alpha(), 0.0);
  EXPECT_LE(sender.alpha(), 1.0);
}

TEST(Dctcp, AlphaFollowsMarkFractionEwma) {
  // Drive the sender with hand-crafted ACK streams: alpha must rise toward
  // 1 under all-marked windows and decay geometrically once marks stop.
  HostPair net;
  DctcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(100'000'000);  // plenty of segments to ack

  std::uint64_t next_ack = 1;
  auto feed_acks = [&](int n, bool ece) {
    for (int i = 0; i < n; ++i) {
      net::Packet ack;
      ack.is_ack = true;
      ack.flow = 1;
      ack.seq = next_ack;
      ack.ack_of_seq = next_ack - 1;
      ack.ece = ece;
      ack.ts = net.sim.now();
      ++next_ack;
      sender.on_packet(ack);
    }
  };

  feed_acks(2000, true);
  const double alpha_marked = sender.alpha();
  EXPECT_GT(alpha_marked, 0.8);  // every window fully marked -> alpha ~ 1

  feed_acks(20000, false);
  EXPECT_LT(sender.alpha(), 0.05);  // decays by (1-g) per clean window
}

TEST(Dctcp, LossStillTriggersStandardRecovery) {
  HostPair net;
  TcpReceiver recv{&net.b, 1, net.a.id()};
  DctcpSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  net.data_queue->drop_segment_once(25);
  sender.write(200 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(sender.stats().fast_retransmits, 1u);
}

// ---------- L2DCT ----------

TEST(L2dct, WeightStartsHighAndDecaysWithService) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::ecn_packets(100, 20)};
  TcpReceiver recv{&net.b, 1, net.a.id()};
  L2dctSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  EXPECT_NEAR(sender.weight(), 2.5, 0.01);  // fresh flow: w_max
  sender.write(3'000'000);                  // ~3 MB of attained service
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_LT(sender.weight(), 0.2);  // decayed toward w_min
  EXPECT_GE(sender.weight(), 0.125);
}

TEST(L2dct, BehavesLikeDctcpUnderEcn) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::ecn_packets(100, 20)};
  TcpReceiver recv{&net.b, 1, net.a.id()};
  L2dctSender sender{&net.a, net.b.id(), 1, TcpConfig{}};
  sender.write(2000 * 1460);
  net.sim.run();
  EXPECT_TRUE(sender.idle());
  EXPECT_EQ(net.data_queue->stats().dropped, 0u);
  EXPECT_GT(net.data_queue->stats().marked_ce, 0u);
  EXPECT_EQ(sender.protocol(), Protocol::kL2dct);
}

}  // namespace
}  // namespace trim::tcp
