// Unit tests for the two storm-facing resource managers: the server-side
// listen backlog (SYN queue) and the client-side ephemeral-port allocator
// with its TIME_WAIT reuse guard.
#include <gtest/gtest.h>

#include "sim/config_error.hpp"
#include "sim/simulator.hpp"
#include "tcp/listen_queue.hpp"
#include "tcp/port_allocator.hpp"

namespace trim::tcp {
namespace {

TEST(ListenQueue, ValidationRejectsNonPositiveDepth) {
  ListenQueueConfig cfg;
  cfg.depth = 0;
  try {
    validate(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.where(), "ListenQueueConfig::depth");
  }
  cfg.depth = -4;
  EXPECT_THROW(ListenQueue{cfg}, ConfigError);
}

TEST(ListenQueue, AcceptsUpToDepthThenAppliesDropPolicy) {
  ListenQueueConfig cfg;
  cfg.depth = 2;
  ListenQueue q{cfg};
  EXPECT_EQ(q.on_syn(1), ListenQueue::Verdict::kAccept);
  EXPECT_EQ(q.on_syn(2), ListenQueue::Verdict::kAccept);
  EXPECT_EQ(q.occupancy(), 2);
  EXPECT_EQ(q.on_syn(3), ListenQueue::Verdict::kDrop);
  EXPECT_EQ(q.occupancy(), 2);
  EXPECT_EQ(q.stats().syn_seen, 3u);
  EXPECT_EQ(q.stats().accepted, 2u);
  EXPECT_EQ(q.stats().overflow_drops, 1u);
  EXPECT_EQ(q.stats().overflow_rsts, 0u);
  EXPECT_EQ(q.stats().peak_occupancy, 2);
}

TEST(ListenQueue, RstPolicyRefusesOverflowExplicitly) {
  ListenQueueConfig cfg;
  cfg.depth = 1;
  cfg.overflow = ListenQueueConfig::OverflowPolicy::kRst;
  ListenQueue q{cfg};
  EXPECT_EQ(q.on_syn(1), ListenQueue::Verdict::kAccept);
  EXPECT_EQ(q.on_syn(2), ListenQueue::Verdict::kRst);
  EXPECT_EQ(q.stats().overflow_rsts, 1u);
  EXPECT_EQ(q.stats().overflow_drops, 0u);
}

TEST(ListenQueue, RetransmittedSynDoesNotTakeASecondSlot) {
  ListenQueueConfig cfg;
  cfg.depth = 2;
  ListenQueue q{cfg};
  EXPECT_EQ(q.on_syn(7), ListenQueue::Verdict::kAccept);
  // The same connection retries (SYN-ACK lost): still accepted, still one
  // slot, and not a fresh SYN in the stats.
  EXPECT_EQ(q.on_syn(7), ListenQueue::Verdict::kAccept);
  EXPECT_EQ(q.occupancy(), 1);
  EXPECT_EQ(q.stats().syn_seen, 1u);
  EXPECT_EQ(q.stats().accepted, 1u);
}

TEST(ListenQueue, EstablishedAndAbortedBothFreeTheSlot) {
  ListenQueueConfig cfg;
  cfg.depth = 1;
  ListenQueue q{cfg};
  ASSERT_EQ(q.on_syn(1), ListenQueue::Verdict::kAccept);
  ASSERT_EQ(q.on_syn(2), ListenQueue::Verdict::kDrop);
  q.on_established(1);
  EXPECT_EQ(q.occupancy(), 0);
  EXPECT_EQ(q.on_syn(2), ListenQueue::Verdict::kAccept);
  q.on_aborted(2);
  EXPECT_EQ(q.occupancy(), 0);
  EXPECT_EQ(q.on_syn(3), ListenQueue::Verdict::kAccept);
  // Freeing a flow that holds no slot is a no-op, not an underflow.
  q.on_established(99);
  EXPECT_EQ(q.occupancy(), 1);
}

TEST(PortAllocator, ValidationRejectsBadRanges) {
  sim::Simulator sim;
  {
    PortAllocatorConfig cfg;
    cfg.port_lo = 0;  // outside the TCP port space
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    PortAllocatorConfig cfg;
    cfg.port_hi = 70000;
    EXPECT_THROW((PortAllocator{&sim, cfg}), ConfigError);
  }
  {
    PortAllocatorConfig cfg;
    cfg.port_lo = 500;
    cfg.port_hi = 400;  // empty range
    try {
      validate(cfg);
      FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
      EXPECT_EQ(e.where(), "PortAllocatorConfig::port_lo/port_hi");
    }
  }
  EXPECT_THROW((PortAllocator{nullptr, PortAllocatorConfig{}}), ConfigError);
}

TEST(PortAllocator, HandsOutLowestFirstAndExhausts) {
  sim::Simulator sim;
  PortAllocatorConfig cfg;
  cfg.port_lo = 100;
  cfg.port_hi = 102;
  PortAllocator alloc{&sim, cfg};
  EXPECT_EQ(alloc.ports_total(), 3);
  EXPECT_EQ(alloc.allocate(), 100);
  EXPECT_EQ(alloc.allocate(), 101);
  EXPECT_EQ(alloc.allocate(), 102);
  EXPECT_EQ(alloc.ports_in_use(), 3);
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  // Two failures inside one dry spell are one exhaustion episode.
  EXPECT_EQ(alloc.stats().failed_allocations, 2u);
  EXPECT_EQ(alloc.stats().exhaustion_episodes, 1u);
  alloc.release(101);
  EXPECT_EQ(alloc.allocate(), 101);
  // A success resets the episode edge: the next dry spell counts anew.
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  EXPECT_EQ(alloc.stats().exhaustion_episodes, 2u);
}

TEST(PortAllocator, TimeWaitHoldBlocksReuseUntilExpiry) {
  sim::Simulator sim;
  PortAllocatorConfig cfg;
  cfg.port_lo = 200;
  cfg.port_hi = 200;  // one port makes the guard directly observable
  PortAllocator alloc{&sim, cfg};
  ASSERT_EQ(alloc.allocate(), 200);
  alloc.release_with_hold(200, sim::SimTime::millis(50));
  EXPECT_EQ(alloc.ports_held(), 1);
  // Still inside the hold: the 4-tuple must not be reused.
  EXPECT_EQ(alloc.allocate(), std::nullopt);
  sim.schedule(sim::SimTime::millis(60), [] {});
  sim.run();
  EXPECT_EQ(alloc.allocate(), 200);
  EXPECT_EQ(alloc.stats().timewait_reclaims, 1u);
  EXPECT_EQ(alloc.ports_held(), 0);
}

TEST(PortAllocator, ZeroHoldReleasesImmediately) {
  sim::Simulator sim;
  PortAllocatorConfig cfg;
  cfg.port_lo = 300;
  cfg.port_hi = 300;
  PortAllocator alloc{&sim, cfg};
  ASSERT_EQ(alloc.allocate(), 300);
  alloc.release_with_hold(300, sim::SimTime::zero());
  EXPECT_EQ(alloc.ports_held(), 0);
  EXPECT_EQ(alloc.allocate(), 300);
}

}  // namespace
}  // namespace trim::tcp
