#include <gtest/gtest.h>

#include "tcp/reno.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp_test_util.hpp"

namespace trim::tcp {
namespace {

using test::HostPair;

struct RenoFlow {
  explicit RenoFlow(HostPair& net, TcpConfig cfg = {})
      : receiver{&net.b, 1, net.a.id()}, sender{&net.a, net.b.id(), 1, cfg} {}
  TcpReceiver receiver;
  RenoSender sender;
};

TEST(TcpSender, DeliversExactByteStream) {
  HostPair net;
  RenoFlow f{net};
  f.sender.write(123'456);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 123'456u);
  EXPECT_EQ(f.sender.bytes_acked(), 123'456u);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
  EXPECT_EQ(f.sender.stats().retransmitted_packets, 0u);
}

TEST(TcpSender, SegmentsAtMssWithShortTail) {
  HostPair net;
  RenoFlow f{net};
  f.sender.write(1460 * 3 + 700);  // 4 segments, last short
  net.sim.run();
  EXPECT_EQ(f.receiver.received_data_packets(), 4u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 1460u * 3 + 700);
}

TEST(TcpSender, SlowStartGrowsWindowPerAck) {
  HostPair net;
  TcpConfig cfg;
  cfg.initial_cwnd = 2.0;
  RenoFlow f{net, cfg};
  f.sender.write(100 * 1460);
  net.sim.run();
  // 100 segments acked in pure slow start: cwnd ~ 2 + 100.
  EXPECT_NEAR(f.sender.cwnd(), 102.0, 1.0);
}

TEST(TcpSender, CongestionAvoidanceGrowsOnePerRtt) {
  HostPair net;
  TcpConfig cfg;
  cfg.initial_cwnd = 10.0;
  RenoFlow f{net, cfg};
  // Force congestion avoidance from the start.
  f.sender.write(1460);  // prime: 1 segment to have a window sample
  net.sim.run();
  // ssthresh is huge; instead verify CA arithmetic via reno hooks by
  // dropping one packet later (covered in loss tests). Here just confirm
  // in-flight never exceeds the window.
  EXPECT_LE(f.sender.in_flight(), static_cast<std::uint64_t>(f.sender.cwnd()) + 1);
}

TEST(TcpSender, FastRetransmitRepairsSingleLossWithoutRto) {
  HostPair net;
  RenoFlow f{net};
  net.data_queue->drop_segment_once(20);
  f.sender.write(200 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 200u * 1460);
  EXPECT_EQ(f.sender.stats().fast_retransmits, 1u);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
  EXPECT_EQ(f.sender.stats().retransmitted_packets, 1u);
}

TEST(TcpSender, FastRetransmitHalvesWindow) {
  HostPair net;
  RenoFlow f{net};
  net.data_queue->drop_segment_once(50);
  f.sender.write(400 * 1460);
  double cwnd_after_recovery = 0;
  net.sim.run();
  cwnd_after_recovery = f.sender.cwnd();
  // Window should be far below the ~400 slow start would have reached.
  EXPECT_LT(cwnd_after_recovery, 120.0);
  EXPECT_GT(cwnd_after_recovery, 2.0);
}

TEST(TcpSender, MultipleLossesInWindowRecoverViaNewReno) {
  HostPair net;
  RenoFlow f{net};
  net.data_queue->drop_segment_once(30);
  net.data_queue->drop_segment_once(31);
  net.data_queue->drop_segment_once(35);
  f.sender.write(300 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 300u * 1460);
}

TEST(TcpSender, TailLossRequiresRto) {
  HostPair net;
  TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  RenoFlow f{net, cfg};
  // Drop the very last segment: no dupacks can follow, so only the RTO
  // can repair it.
  net.data_queue->drop_segment_once(9);
  f.sender.write(10 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.sender.stats().timeouts, 1u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 10u * 1460);
}

TEST(TcpSender, WholeWindowLossCollapsesToRto) {
  HostPair net;
  TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  RenoFlow f{net, cfg};
  net.data_queue->drop_next_data(2);  // initial window is 2: all lost
  f.sender.write(50 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_GE(f.sender.stats().timeouts, 1u);
  EXPECT_EQ(f.receiver.delivered_bytes(), 50u * 1460);
}

TEST(TcpSender, RepeatedLossBacksOffExponentially) {
  HostPair net;
  TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  RenoFlow f{net, cfg};
  // Lose the first segment four times in a row (initial + 3 retransmits).
  net.data_queue->drop_segment_once(0);
  net.data_queue->drop_segment_once(0);
  net.data_queue->drop_segment_once(0);
  net.data_queue->drop_segment_once(0);
  const auto start = net.sim.now();
  f.sender.write(1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.sender.stats().timeouts, 4u);
  // Backoff: 10 + 20 + 40 + 80 = at least 150 ms before success.
  EXPECT_GE((net.sim.now() - start).to_millis(), 150.0);
}

TEST(TcpSender, RtoRestartsFromOneSegment) {
  HostPair net;
  TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  cfg.cwnd_after_rto = 1.0;
  RenoFlow f{net, cfg};
  stats::TimeSeries cwnd_trace;
  f.sender.set_cwnd_trace(&cwnd_trace);
  net.data_queue->drop_next_data(2);
  f.sender.write(100 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  // The trace must show the post-RTO collapse to exactly one segment.
  EXPECT_DOUBLE_EQ(cwnd_trace.min_value(), 1.0);
  EXPECT_GE(f.sender.stats().timeouts, 1u);
}

TEST(TcpSender, MessageCompletionCallbacksFireInOrder) {
  HostPair net;
  RenoFlow f{net};
  std::vector<std::uint64_t> completed;
  f.sender.add_message_complete_callback(
      [&](std::uint64_t id, sim::SimTime) { completed.push_back(id); });
  const auto m0 = f.sender.write(10'000);
  const auto m1 = f.sender.write(20'000);
  const auto m2 = f.sender.write(5'000);
  net.sim.run();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{m0, m1, m2}));
  EXPECT_EQ(f.sender.stats().completed_message_times().size(), 3u);
}

TEST(TcpSender, WriteWhileBusyQueuesBehindExistingData) {
  HostPair net;
  RenoFlow f{net};
  f.sender.write(50 * 1460);
  net.sim.run_until(sim::SimTime::micros(200));
  f.sender.write(50 * 1460);
  net.sim.run();
  EXPECT_EQ(f.receiver.delivered_bytes(), 100u * 1460);
  EXPECT_TRUE(f.sender.idle());
}

TEST(TcpSender, ZeroByteWriteRejected) {
  HostPair net;
  RenoFlow f{net};
  EXPECT_THROW(f.sender.write(0), std::invalid_argument);
}

TEST(TcpSender, RttSamplesAreLinkAccurate) {
  HostPair net;  // 50 us each way + serialization
  RenoFlow f{net};
  f.sender.write(1460);
  net.sim.run();
  // RTT = 2*50 us prop + 12 us data serialization + 0.32 us ack.
  EXPECT_NEAR(f.sender.rtt().srtt().to_micros(), 112.3, 1.0);
}

TEST(TcpReceiver, CountsDuplicatesFromSpuriousRetransmission) {
  HostPair net;
  TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(1);  // aggressively small: spurious RTOs
  RenoFlow f{net, cfg};
  // Nothing dropped, but with a 1 ms floor and ~112 us RTT the first RTO
  // should never fire; verify no duplicates in the clean case.
  f.sender.write(20 * 1460);
  net.sim.run();
  EXPECT_EQ(f.receiver.duplicate_data_packets(), 0u);
}

TEST(TcpSender, InFlightNeverExceedsWindow) {
  HostPair net;
  RenoFlow f{net};
  bool violated = false;
  // Poll the invariant while the transfer runs.
  for (int i = 0; i < 200; ++i) {
    net.sim.schedule_at(sim::SimTime::micros(25 * i), [&] {
      if (f.sender.in_flight() >
          static_cast<std::uint64_t>(f.sender.cwnd()) + 1) {
        violated = true;
      }
    });
  }
  f.sender.write(300 * 1460);
  net.sim.run();
  EXPECT_FALSE(violated);
}

}  // namespace
}  // namespace trim::tcp
