#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/arena.hpp"
#include "sim/config_error.hpp"

namespace trim::mem {
namespace {

TEST(Arena, AllocationsAreContiguousInCreationOrder) {
  Arena a;
  auto* x = static_cast<std::byte*>(a.allocate(16, 8));
  auto* y = static_cast<std::byte*>(a.allocate(16, 8));
  auto* z = static_cast<std::byte*>(a.allocate(16, 8));
  EXPECT_EQ(y - x, 16);
  EXPECT_EQ(z - y, 16);
  EXPECT_EQ(a.bytes_allocated(), 48u);
  EXPECT_EQ(a.chunk_count(), 1u);
}

TEST(Arena, RespectsAlignment) {
  Arena a;
  a.allocate(1, 1);  // misalign the cursor
  auto* p = a.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  auto* q = a.allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 8, 0u);
}

TEST(Arena, GrowsChunksGeometricallyAndStaysPointerStable) {
  Arena a{1024};
  std::vector<std::uint64_t*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    ptrs.push_back(a.create<std::uint64_t>(static_cast<std::uint64_t>(i)));
  }
  EXPECT_GT(a.chunk_count(), 1u);
  // Every earlier object is still where it was, holding what it held.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(a.object_count(), 1000u);
}

TEST(Arena, OversizedAllocationGetsItsOwnChunk) {
  Arena a{1024};
  void* p = a.allocate(64 * 1024, 8);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(a.bytes_reserved(), 64u * 1024u);
}

TEST(Arena, ReleaseFreesEverything) {
  Arena a{1024};
  for (int i = 0; i < 100; ++i) a.allocate(64, 8);
  a.release();
  EXPECT_EQ(a.chunk_count(), 0u);
  EXPECT_EQ(a.bytes_allocated(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
  // Reusable after release.
  auto* p = a.create<int>(7);
  EXPECT_EQ(*p, 7);
}

TEST(Arena, ZeroChunkSizeThrows) {
  EXPECT_THROW(Arena{0}, ConfigError);
}

struct Probe {
  static int live;
  int v;
  explicit Probe(int x) : v{x} { ++live; }
  ~Probe() { --live; }
};
int Probe::live = 0;

TEST(ArenaPtr, ArenaBackedRunsDestructorWithoutFreeingStorage) {
  Arena a;
  {
    ArenaPtr<Probe> p = arena_new<Probe>(&a, 42);
    EXPECT_EQ(Probe::live, 1);
    EXPECT_EQ(p->v, 42);
    EXPECT_FALSE(p.get_deleter().heap);
  }
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(a.object_count(), 1u);  // storage still accounted to the arena
}

TEST(ArenaPtr, NullArenaFallsBackToHeap) {
  ArenaPtr<Probe> p = arena_new<Probe>(nullptr, 1);
  EXPECT_TRUE(p.get_deleter().heap);
  EXPECT_EQ(Probe::live, 1);
  p.reset();
  EXPECT_EQ(Probe::live, 0);
}

struct Base {
  virtual ~Base() = default;
};
struct Derived : Base {
  explicit Derived(int* flag) : flag_{flag} {}
  ~Derived() override { *flag_ = 1; }
  int* flag_;
};

TEST(ArenaPtr, MakeUniqueConvertsAndUpcasts) {
  // Existing factories returning std::unique_ptr<Derived> must keep
  // converting to ArenaPtr<Base> (deleter converts from default_delete).
  int destroyed = 0;
  {
    ArenaPtr<Base> p = std::make_unique<Derived>(&destroyed);
    EXPECT_TRUE(p.get_deleter().heap);
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(ArenaPtr, ArenaUpcastDestroysThroughVirtualDtor) {
  Arena a;
  int destroyed = 0;
  {
    ArenaPtr<Base> p = arena_new<Derived>(&a, &destroyed);
    EXPECT_FALSE(p.get_deleter().heap);
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace trim::mem
