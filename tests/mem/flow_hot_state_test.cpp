#include <gtest/gtest.h>

#include <vector>

#include "mem/flow_hot_state.hpp"

namespace trim::mem {
namespace {

TEST(FlowHotTable, AcquireAssignsSlotsInCreationOrder) {
  FlowHotTable t;
  EXPECT_EQ(t.acquire(100), 0u);
  EXPECT_EQ(t.acquire(101), 1u);
  EXPECT_EQ(t.acquire(102), 2u);
  EXPECT_EQ(t.live(), 3u);
  EXPECT_EQ(t.flow_id(1), 101u);
}

TEST(FlowHotTable, SlotsStartZeroedWithDisarmedRto) {
  FlowHotTable t;
  const auto s = t.acquire(7);
  EXPECT_EQ(t.cwnd(s), 0.0);
  EXPECT_EQ(t.ssthresh(s), 0.0);
  EXPECT_EQ(t.snd_una(s), 0u);
  EXPECT_EQ(t.snd_next(s), 0u);
  EXPECT_EQ(t.rto_deadline(s), sim::SimTime::max());
  EXPECT_EQ(t.rtt(s).samples(), 0u);
}

TEST(FlowHotTable, ReleaseRecyclesSlotsAndScrubsState) {
  FlowHotTable t;
  const auto a = t.acquire(1);
  t.acquire(2);
  t.cwnd(a) = 99.0;
  t.snd_next(a) = 77;
  t.rto_deadline(a) = sim::SimTime::seconds(1);
  t.release(a);
  EXPECT_EQ(t.live(), 1u);
  // Recycled slot comes back clean.
  const auto c = t.acquire(3);
  EXPECT_EQ(c, a);
  EXPECT_EQ(t.cwnd(c), 0.0);
  EXPECT_EQ(t.snd_next(c), 0u);
  EXPECT_EQ(t.rto_deadline(c), sim::SimTime::max());
  EXPECT_EQ(t.flow_id(c), 3u);
  EXPECT_EQ(t.capacity(), 2u);  // no growth: the free list served it
}

TEST(FlowHotTable, ForEachLiveSkipsReleasedAndVisitsInSlotOrder) {
  FlowHotTable t;
  const auto a = t.acquire(10);
  const auto b = t.acquire(11);
  const auto c = t.acquire(12);
  t.cwnd(a) = 1.0;
  t.cwnd(b) = 2.0;
  t.cwnd(c) = 3.0;
  t.release(b);
  std::vector<std::uint32_t> seen;
  t.for_each_live([&](FlowHotTable::Slot, std::uint32_t flow, const FlowHotState& hs) {
    seen.push_back(flow);
    EXPECT_GT(hs.cwnd, 0.0);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 10u);
  EXPECT_EQ(seen[1], 12u);
}

TEST(FlowHotTable, MinLiveCwndIsColumnMinimum) {
  FlowHotTable t;
  EXPECT_EQ(t.min_live_cwnd(), FlowHotTable::kNoLiveCwnd);
  const auto a = t.acquire(1);
  const auto b = t.acquire(2);
  t.cwnd(a) = 5.0;
  t.cwnd(b) = 2.5;
  EXPECT_EQ(t.min_live_cwnd(), 2.5);
  t.release(b);
  EXPECT_EQ(t.min_live_cwnd(), 5.0);
}

TEST(FlowHotTable, StateBytesGrowsWithCapacityNotLiveness) {
  FlowHotTable t;
  const auto empty_bytes = t.state_bytes();
  std::vector<FlowHotTable::Slot> slots;
  for (std::uint32_t i = 0; i < 100; ++i) slots.push_back(t.acquire(i));
  const auto full_bytes = t.state_bytes();
  EXPECT_GT(full_bytes, empty_bytes);
  for (auto s : slots) t.release(s);
  EXPECT_EQ(t.live(), 0u);
  EXPECT_EQ(t.state_bytes(), full_bytes);  // columns keep their capacity
}

}  // namespace
}  // namespace trim::mem
