// Tests for the allocation-counting harness itself. This binary links
// trim_alloc_hook, so global operator new/delete are the counting
// replacements; most other test binaries don't, and alloc_hooks_active()
// is how a test can tell which world it lives in.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "mem/alloc_hooks.hpp"

namespace trim::mem {
namespace {

// The optimizer may legally elide a matched new/delete pair whose pointer
// never escapes ([expr.new]/10) — and under -O2 it does, which would make
// these tests observe nothing. Publishing the pointer through a volatile
// global forces the allocation to really happen.
void* volatile g_escape = nullptr;

template <typename T>
T* escape(T* p) {
  g_escape = p;
  return p;
}

// The gate and records are process-global, so these tests serialize
// through a fixture that always restores the off state.
class AllocHooks : public ::testing::Test {
 protected:
  void SetUp() override {
    set_alloc_counting(false);
    reset_alloc_counts();
  }
  void TearDown() override { set_alloc_counting(false); }
};

TEST_F(AllocHooks, HooksAreLinkedIntoThisBinary) {
  EXPECT_TRUE(alloc_hooks_active());
}

TEST_F(AllocHooks, CountsNewAndDeleteWhileEnabled) {
  set_alloc_counting(true);
  const AllocTotals before = alloc_totals();
  auto* p = escape(new int{7});
  delete p;
  set_alloc_counting(false);
  const AllocTotals after = alloc_totals();
  EXPECT_GE(after.allocs, before.allocs + 1);
  EXPECT_GE(after.frees, before.frees + 1);
  EXPECT_GE(after.bytes, before.bytes + sizeof(int));
}

TEST_F(AllocHooks, DisabledGateCountsNothing) {
  reset_alloc_counts();
  auto* p = escape(new std::vector<int>(100));
  delete p;
  const AllocTotals t = alloc_totals();
  EXPECT_EQ(t.allocs, 0u);
  EXPECT_EQ(t.frees, 0u);
}

TEST_F(AllocHooks, ResetZeroesTotalsButKeepsThreadRecords) {
  set_alloc_counting(true);
  delete escape(new int{1});
  set_alloc_counting(false);
  const std::size_t threads = alloc_tracked_threads();
  EXPECT_GE(threads, 1u);
  reset_alloc_counts();
  const AllocTotals t = alloc_totals();
  EXPECT_EQ(t.allocs, 0u);
  EXPECT_EQ(t.frees, 0u);
  EXPECT_EQ(t.bytes, 0u);
  EXPECT_EQ(alloc_tracked_threads(), threads);
}

TEST_F(AllocHooks, EachAllocatingThreadGetsItsOwnRecord) {
  // The sharded engine's workers count into thread-local records; totals
  // must sum across them without double counting or losing a thread.
  constexpr int kThreads = 4;
  constexpr int kAllocsPerThread = 100;
  set_alloc_counting(true);
  reset_alloc_counts();
  const std::size_t tracked_before = alloc_tracked_threads();
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kAllocsPerThread; ++i) delete escape(new int{i});
    });
  }
  for (auto& th : pool) th.join();
  set_alloc_counting(false);
  const AllocTotals t = alloc_totals();
  EXPECT_GE(t.allocs, static_cast<std::uint64_t>(kThreads * kAllocsPerThread));
  EXPECT_GE(t.frees, static_cast<std::uint64_t>(kThreads * kAllocsPerThread));
  EXPECT_GE(alloc_tracked_threads(), tracked_before + kThreads);
}

TEST_F(AllocHooks, AlignedAndArrayFormsAreCounted) {
  set_alloc_counting(true);
  reset_alloc_counts();
  auto* arr = escape(new double[32]);
  delete[] arr;
  struct alignas(64) Wide {
    double d[8];
  };
  auto* w = escape(new Wide);
  delete w;
  set_alloc_counting(false);
  const AllocTotals t = alloc_totals();
  EXPECT_GE(t.allocs, 2u);
  EXPECT_EQ(t.allocs, t.frees);
}

}  // namespace
}  // namespace trim::mem
