#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "mem/ring_buffer.hpp"

namespace trim::mem {
namespace {

TEST(RingBuffer, FifoOrderAcrossGrowth) {
  RingBuffer<int> r;
  for (int i = 0; i < 100; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(RingBuffer, WrapsWithoutGrowingOnceWarm) {
  RingBuffer<int> r;
  r.reserve(16);
  const std::size_t cap = r.capacity();
  EXPECT_GE(cap, 16u);
  // Push/pop far more elements than the capacity: the logical indices wrap
  // around the slab many times and the slab must never grow.
  for (int i = 0; i < 1000; ++i) {
    r.push_back(i);
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_EQ(r.capacity(), cap);
}

TEST(RingBuffer, FrontBackIndexConsistentWhileWrapped) {
  RingBuffer<int> r;
  r.reserve(16);
  for (int i = 0; i < 12; ++i) r.push_back(i);     // head at 0, tail at 12
  for (int i = 0; i < 10; ++i) r.pop_front();      // head at 10
  for (int i = 12; i < 20; ++i) r.push_back(i);    // tail wraps past 16
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.front(), 10);
  EXPECT_EQ(r.back(), 19);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], 10 + static_cast<int>(i));
  }
}

TEST(RingBuffer, GrowRelocatesWrappedContentsInOrder) {
  RingBuffer<std::string> r;  // non-trivial type: growth must move-construct
  r.reserve(16);
  for (int i = 0; i < 12; ++i) r.push_back(std::to_string(i));
  for (int i = 0; i < 10; ++i) r.pop_front();
  // Fill past capacity while wrapped so growth linearizes a split ring.
  for (int i = 12; i < 40; ++i) r.push_back(std::to_string(i));
  EXPECT_GT(r.capacity(), 16u);
  EXPECT_EQ(r.size(), 30u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], std::to_string(10 + static_cast<int>(i)));
  }
}

struct Counted {
  static int live;
  Counted() { ++live; }
  Counted(Counted&&) noexcept { ++live; }
  ~Counted() { --live; }
};
int Counted::live = 0;

TEST(RingBuffer, DestroysLiveElementsExactlyOnce) {
  Counted::live = 0;
  {
    RingBuffer<Counted> r;
    for (int i = 0; i < 40; ++i) r.push_back(Counted{});
    for (int i = 0; i < 15; ++i) r.pop_front();
    EXPECT_EQ(Counted::live, 25);
    r.clear();
    EXPECT_EQ(Counted::live, 0);
    for (int i = 0; i < 5; ++i) r.push_back(Counted{});
  }  // dtor destroys the rest
  EXPECT_EQ(Counted::live, 0);
}

TEST(RingBuffer, MoveTransfersOwnership) {
  RingBuffer<int> a;
  for (int i = 0; i < 5; ++i) a.push_back(i);
  RingBuffer<int> b{std::move(a)};
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.front(), 0);
  a = std::move(b);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.back(), 4);
}

TEST(RingBuffer, CapacityIsPowerOfTwo) {
  RingBuffer<int> r;
  r.reserve(100);
  EXPECT_EQ(r.capacity() & (r.capacity() - 1), 0u);
  EXPECT_GE(r.capacity(), 100u);
}

}  // namespace
}  // namespace trim::mem
