// The zero-allocation steady-state gate (the memory-architecture PR's
// acceptance test): once a scenario's flows are established and every
// pool/ring/queue has grown to its working set, dispatching events must
// not touch the global allocator at all. This binary links
// trim_alloc_hook, so every operator new/delete in the process is counted.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "mem/alloc_hooks.hpp"
#include "net/queue.hpp"
#include "topo/many_to_one.hpp"

using namespace trim;

namespace {

net::Packet data_packet(std::uint32_t payload) {
  net::Packet p;
  p.payload_bytes = payload;
  return p;
}

TEST(ZeroAlloc, WarmDropTailQueueCyclesWithoutAllocating) {
  ASSERT_TRUE(mem::alloc_hooks_active());
  net::DropTailQueue q{net::QueueConfig::droptail_packets(100)};
  // Warm: the ring was pre-sized from the packet cap at construction, so
  // even the very first burst is silent — but warm explicitly anyway so
  // the assertion isolates the steady cycle.
  for (int i = 0; i < 50; ++i) q.enqueue(data_packet(1460));
  net::Packet out;
  mem::reset_alloc_counts();
  mem::set_alloc_counting(true);
  for (int i = 0; i < 10'000; ++i) {
    q.enqueue(data_packet(1460));
    ASSERT_TRUE(q.dequeue_into(out));
  }
  mem::set_alloc_counting(false);
  const auto t = mem::alloc_totals();
  EXPECT_EQ(t.allocs, 0u);
  EXPECT_EQ(t.frees, 0u);
}

// The real gate: a fig08-flavored many-to-one world (persistent
// connections streaming long messages through a droptail bottleneck),
// measured over a steady window after warm-up. Loss recovery, RTO
// re-arming, ACK clocking, telemetry counters — all of it must run
// allocation-free once the structures are warm.
TEST(ZeroAlloc, SteadyStateScenarioWindowAllocatesNothing) {
  ASSERT_TRUE(mem::alloc_hooks_active());
  exp::World world;
  topo::ManyToOneConfig cfg;
  cfg.num_servers = 4;
  // Deep buffer: the steady window must exercise the common path, not
  // drop-recovery churn (loss handling is exercised by the suite at
  // large; the zero-alloc property targets the per-event fast path).
  cfg.switch_buffer_pkts = 2000;
  const auto topo = build_many_to_one(world.network, cfg);
  core::ProtocolOptions opts;
  std::vector<tcp::Flow> flows;
  for (int i = 0; i < cfg.num_servers; ++i) {
    flows.push_back(core::make_protocol_flow(world.network, *topo.servers[i],
                                             *topo.front_end, tcp::Protocol::kReno,
                                             opts));
    // One long message per flow: the window below sits strictly inside the
    // transfer, so no write()-side message bookkeeping runs during it.
    flows.back().sender->write(50'000'000);
  }

  // Warm-up: slow start finishes, queues/rings/event pools reach their
  // peak working set. The window must start past at least one full
  // congestion-avoidance sawtooth, or peak event counts (and so peak
  // wheel-bucket storage demand) are still being discovered.
  world.run_until(sim::SimTime::millis(500));
  const std::uint64_t warm_events = world.simulator.events_dispatched();

  mem::reset_alloc_counts();
  mem::set_alloc_counting(true);
  world.run_until(sim::SimTime::millis(1000));
  mem::set_alloc_counting(false);

  const std::uint64_t window_events =
      world.simulator.events_dispatched() - warm_events;
  ASSERT_GT(window_events, 100'000u) << "window unexpectedly idle";
  for (auto& f : flows) {
    ASSERT_FALSE(f.sender->idle()) << "transfer finished inside the window";
  }

  const auto t = mem::alloc_totals();
  EXPECT_EQ(t.allocs, 0u)
      << "steady-state window performed " << t.allocs << " allocations ("
      << t.bytes << " bytes) across " << window_events << " events";
  EXPECT_EQ(t.frees, 0u);
}

// Same property for the senders' own accounting when messages DO complete:
// a persistent connection cycling request/response messages reuses its
// message-record ring and FlowStats pools after the first few cycles.
TEST(ZeroAlloc, PersistentMessageCyclingSettlesToZeroAllocs) {
  ASSERT_TRUE(mem::alloc_hooks_active());
  exp::World world;
  topo::ManyToOneConfig cfg;
  cfg.num_servers = 1;
  const auto topo = build_many_to_one(world.network, cfg);
  core::ProtocolOptions opts;
  auto flow = core::make_protocol_flow(world.network, *topo.servers[0],
                                       *topo.front_end, tcp::Protocol::kReno, opts);
  // Response->response loop: each completion immediately writes the next.
  flow.sender->add_message_complete_callback(
      [&flow](std::uint64_t, sim::SimTime) { flow.sender->write(100'000); });
  flow.sender->write(100'000);

  world.run_until(sim::SimTime::millis(200));  // many full cycles

  mem::reset_alloc_counts();
  mem::set_alloc_counting(true);
  world.run_until(sim::SimTime::millis(600));
  mem::set_alloc_counting(false);

  const auto t = mem::alloc_totals();
  // FlowStats accumulates one completion record per message, so the cycle
  // is not perfectly silent — but it must be bounded by the message count,
  // nowhere near the per-event or per-packet rate.
  const auto messages =
      flow.sender->stats().completed_message_times().size();
  EXPECT_GT(messages, 20u);
  EXPECT_LT(t.allocs, messages * 4) << "per-message allocation churn";
}

}  // namespace
