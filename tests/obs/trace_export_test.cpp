// Trace export: the TRIM_TRACE knob, TRACE_*.jsonl file writing, the
// JSONL parser round-trip, and the Chrome trace-event conversion that
// tools/trim_trace performs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/span_tracer.hpp"
#include "obs/trace_export.hpp"

namespace trim::obs {
namespace {

class TraceEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* old = std::getenv("TRIM_TRACE")) saved_ = old;
    unsetenv("TRIM_TRACE");
  }
  void TearDown() override {
    if (saved_.empty()) {
      unsetenv("TRIM_TRACE");
    } else {
      setenv("TRIM_TRACE", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST_F(TraceEnvTest, KnobParsing) {
  EXPECT_FALSE(trace_enabled());  // unset
  setenv("TRIM_TRACE", "0", 1);
  EXPECT_FALSE(trace_enabled());
  setenv("TRIM_TRACE", "", 1);
  EXPECT_FALSE(trace_enabled());
  setenv("TRIM_TRACE", "1", 1);
  EXPECT_TRUE(trace_enabled());
  setenv("TRIM_TRACE", "/tmp/somewhere", 1);
  EXPECT_TRUE(trace_enabled());
  EXPECT_EQ(trace_dir(), "/tmp/somewhere");
}

TEST_F(TraceEnvTest, WriteCreatesSequencedFilesInTraceDir) {
  char tmpl[] = "/tmp/trim_trace_test_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = std::string{tmpl} + "/traces";  // not yet created
  setenv("TRIM_TRACE", dir.c_str(), 1);

  const std::string p1 = write_trace_jsonl("shard0", "line one\n");
  const std::string p2 = write_trace_jsonl("shard1", "line two\n");
  ASSERT_FALSE(p1.empty());
  ASSERT_FALSE(p2.empty());
  EXPECT_EQ(p1.rfind(dir + "/TRACE_shard0_", 0), 0u) << p1;
  EXPECT_NE(p1, p2);

  std::FILE* f = std::fopen(p1.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  std::fclose(f);
  EXPECT_STREQ(buf, "line one\n");

  // Cleanup (ignore failures — /tmp is scratch).
  std::remove(p1.c_str());
  std::remove(p2.c_str());
  rmdir(dir.c_str());
  rmdir(tmpl);
}

TEST(TraceParse, SpanAndEventLinesRoundTrip) {
  std::string body;
  Span s;
  s.id = 3;
  s.parent = 1;
  s.kind = SpanKind::kProbe;
  s.flow = 7;
  s.begin = sim::SimTime::millis(250);
  s.end = sim::SimTime::millis(300);
  s.a = 10.0;
  s.b = 6.5;
  s.complete = true;
  append_span_jsonl(body, s);
  body += "{\"kind\":\"rto_fired\",\"t\":0.125,\"subject\":9,"
          "\"a\":2,\"b\":144}\n";
  body += "\n";                     // blank lines are skipped
  body += "{\"unrelated\":true}\n"; // unknown lines are skipped

  const std::vector<TraceLine> lines = parse_trace_jsonl(body);
  ASSERT_EQ(lines.size(), 2u);

  ASSERT_TRUE(lines[0].is_span);
  EXPECT_EQ(lines[0].span, "probe");
  EXPECT_EQ(lines[0].id, 3u);
  EXPECT_EQ(lines[0].parent, 1u);
  EXPECT_EQ(lines[0].flow, 7u);
  EXPECT_DOUBLE_EQ(lines[0].t0, 0.25);
  EXPECT_DOUBLE_EQ(lines[0].t1, 0.30);
  EXPECT_DOUBLE_EQ(lines[0].a, 10.0);
  EXPECT_DOUBLE_EQ(lines[0].b, 6.5);
  EXPECT_TRUE(lines[0].complete);

  ASSERT_FALSE(lines[1].is_span);
  EXPECT_EQ(lines[1].kind, "rto_fired");
  EXPECT_DOUBLE_EQ(lines[1].t, 0.125);
  EXPECT_EQ(lines[1].subject, 9u);
  EXPECT_DOUBLE_EQ(lines[1].a, 2.0);
  EXPECT_DOUBLE_EQ(lines[1].b, 144.0);
}

TEST(ChromeTrace, SpansBecomeDurationsAndEventsInstants) {
  TraceLine span;
  span.is_span = true;
  span.span = "handshake";
  span.id = 2;
  span.parent = 1;
  span.flow = 5;
  span.t0 = 0.001;
  span.t1 = 0.003;
  span.complete = true;
  TraceLine inst;
  inst.is_span = false;
  inst.kind = "backlog_drop";
  inst.subject = 42;
  inst.t = 0.002;
  inst.b = 1.0;

  const std::string out =
      to_chrome_trace({{"shard0", {span}}, {"shard1", {inst}}});

  // Top-level schema the trim_trace CI smoke validates too.
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // One process per input document, named after it.
  EXPECT_NE(out.find("\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                     "\"args\":{\"name\":\"shard0\"}"),
            std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"name\":\"shard1\"}"), std::string::npos);
  // The span: a complete "X" slice on tid = flow, microsecond units.
  EXPECT_NE(out.find("\"name\":\"handshake\",\"cat\":\"span\",\"ph\":\"X\","
                     "\"ts\":1000,\"dur\":2000,\"pid\":0,\"tid\":5"),
            std::string::npos);
  // The event: an instant on tid = subject in the second process.
  EXPECT_NE(out.find("\"name\":\"backlog_drop\",\"cat\":\"event\","
                     "\"ph\":\"i\",\"s\":\"t\",\"ts\":2000,\"pid\":1,"
                     "\"tid\":42"),
            std::string::npos);
}

TEST(ChromeTrace, EmptyInputStillYieldsValidSchema) {
  const std::string out = to_chrome_trace({});
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("],\"displayTimeUnit\":\"ms\"}"), std::string::npos);
}

TEST(ChromeTrace, TracerJsonlSurvivesTheFullPipeline) {
  // End-to-end: tracer -> JSONL -> parser -> Chrome trace, the exact
  // path tools/trim_trace runs over TRACE_*.jsonl files.
  SpanTracer tracer;
  const auto at = [](double t) { return sim::SimTime::seconds(t); };
  tracer.on_event({at(0.10), EventKind::kConnSynSent, 7, 0.0, 0.0});
  tracer.on_event({at(0.15), EventKind::kConnEstablished, 7, 0.05, 0.0});
  tracer.on_event({at(0.90), EventKind::kConnClosed, 7, 1.0, 0.0});

  const std::vector<TraceLine> lines = parse_trace_jsonl(tracer.to_jsonl());
  ASSERT_EQ(lines.size(), tracer.spans().size());
  const std::string chrome = to_chrome_trace({{"run", lines}});
  EXPECT_NE(chrome.find("\"name\":\"connection\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"handshake\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"slow_start\""), std::string::npos);
}

}  // namespace
}  // namespace trim::obs
