// Span tracer unit tests: lifecycle assembly from synthetic event
// streams, parent/child causality, payload capture, finalize semantics,
// drop accounting, and the order-independence of the stats digest.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/span_tracer.hpp"

namespace trim::obs {
namespace {

RecordedEvent ev(double t, EventKind kind, std::uint32_t subject,
                 double a = 0.0, double b = 0.0) {
  return RecordedEvent{sim::SimTime::seconds(t), kind, subject, a, b};
}

const Span* find_span(const SpanTracer& tracer, SpanKind kind,
                      std::uint32_t flow) {
  for (const auto& s : tracer.spans()) {
    if (s.kind == kind && s.flow == flow) return &s;
  }
  return nullptr;
}

std::size_t count_kind(const SpanTracer& tracer, SpanKind kind) {
  std::size_t n = 0;
  for (const auto& s : tracer.spans()) {
    if (s.kind == kind) ++n;
  }
  return n;
}

// The full healthy lifecycle of one flow: handshake, slow start, a TRIM
// probe episode, an RTO recovery, graceful close, TIME_WAIT.
std::vector<RecordedEvent> full_lifecycle(std::uint32_t flow) {
  return {
      ev(0.10, EventKind::kConnSynSent, flow, /*a=*/0.0),
      ev(0.15, EventKind::kConnEstablished, flow, /*a=*/0.05, /*b=*/0.0),
      ev(0.30, EventKind::kTrimProbeEnter, flow, /*a=*/10.0, /*b=*/2.0),
      ev(0.32, EventKind::kTrimResumeEq1, flow, /*a=*/6.0, /*b=*/0.0002),
      ev(0.50, EventKind::kRtoFired, flow, /*a=*/0.0),
      ev(0.70, EventKind::kRtoFired, flow, /*a=*/1.0),
      ev(0.80, EventKind::kRtoArmed, flow, /*a=*/0.2, /*b=*/0.0),
      ev(1.00, EventKind::kConnTimeWaitEnter, flow, /*a=*/0.1),
      ev(1.00, EventKind::kConnClosed, flow, /*a=*/1.0),
      ev(1.10, EventKind::kConnTimeWaitExpire, flow),
  };
}

TEST(SpanTracer, AssemblesFullLifecycle) {
  SpanTracer tracer;
  for (const auto& e : full_lifecycle(7)) tracer.on_event(e);

  // One span of every kind, all complete.
  ASSERT_EQ(tracer.spans().size(), 6u);
  for (const auto& s : tracer.spans()) {
    EXPECT_TRUE(s.complete) << to_string(s.kind);
    EXPECT_EQ(s.flow, 7u);
  }

  const Span* conn = find_span(tracer, SpanKind::kConnection, 7);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->parent, 0u);
  EXPECT_DOUBLE_EQ(conn->begin.to_seconds(), 0.10);
  EXPECT_DOUBLE_EQ(conn->end.to_seconds(), 1.00);
  EXPECT_DOUBLE_EQ(conn->a, 1.0);  // graceful

  const Span* hs = find_span(tracer, SpanKind::kHandshake, 7);
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->parent, conn->id);
  EXPECT_DOUBLE_EQ(hs->begin.to_seconds(), 0.10);
  EXPECT_DOUBLE_EQ(hs->end.to_seconds(), 0.15);
  EXPECT_DOUBLE_EQ(hs->a, 0.05);  // setup latency rides on the span

  const Span* ss = find_span(tracer, SpanKind::kSlowStart, 7);
  ASSERT_NE(ss, nullptr);
  EXPECT_EQ(ss->parent, conn->id);
  EXPECT_DOUBLE_EQ(ss->begin.to_seconds(), 0.15);
  EXPECT_DOUBLE_EQ(ss->end.to_seconds(), 0.30);  // ends at probe enter

  const Span* probe = find_span(tracer, SpanKind::kProbe, 7);
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->parent, conn->id);
  EXPECT_DOUBLE_EQ(probe->begin.to_seconds(), 0.30);
  EXPECT_DOUBLE_EQ(probe->end.to_seconds(), 0.32);
  EXPECT_DOUBLE_EQ(probe->a, 10.0);  // saved cwnd
  EXPECT_DOUBLE_EQ(probe->b, 6.0);   // resumed (Eq. 1) cwnd

  const Span* rto = find_span(tracer, SpanKind::kRto, 7);
  ASSERT_NE(rto, nullptr);
  EXPECT_EQ(rto->parent, conn->id);
  EXPECT_DOUBLE_EQ(rto->begin.to_seconds(), 0.50);
  EXPECT_DOUBLE_EQ(rto->end.to_seconds(), 0.80);
  EXPECT_DOUBLE_EQ(rto->a, 0.0);  // backoff exponent at first fire
  EXPECT_DOUBLE_EQ(rto->b, 2.0);  // two fires inside the span

  const Span* tw = find_span(tracer, SpanKind::kTimeWait, 7);
  ASSERT_NE(tw, nullptr);
  EXPECT_EQ(tw->parent, conn->id);
  EXPECT_DOUBLE_EQ(tw->begin.to_seconds(), 1.00);
  EXPECT_DOUBLE_EQ(tw->end.to_seconds(), 1.10);
  EXPECT_DOUBLE_EQ(tw->a, 0.1);  // configured dwell
}

TEST(SpanTracer, PassiveSynDoesNotOpenASecondHandshake) {
  SpanTracer tracer;
  tracer.on_event(ev(0.1, EventKind::kConnSynSent, 3, /*a=*/1.0));  // SYN-ACK
  tracer.on_event(ev(0.2, EventKind::kConnEstablished, 3, /*a=*/0.1));
  // The passive side still gets a connection root and a slow-start span,
  // but no handshake span (that belongs to the active opener).
  EXPECT_EQ(count_kind(tracer, SpanKind::kHandshake), 0u);
  EXPECT_EQ(count_kind(tracer, SpanKind::kConnection), 1u);
  EXPECT_EQ(count_kind(tracer, SpanKind::kSlowStart), 1u);
}

TEST(SpanTracer, ProbeTimeoutClosesProbeWithResumeCwnd) {
  SpanTracer tracer;
  tracer.on_event(ev(0.1, EventKind::kTrimProbeEnter, 5, /*a=*/12.0));
  tracer.on_event(ev(0.3, EventKind::kTrimProbeTimeout, 5, /*a=*/2.0,
                     /*b=*/12.0));
  const Span* probe = find_span(tracer, SpanKind::kProbe, 5);
  ASSERT_NE(probe, nullptr);
  EXPECT_TRUE(probe->complete);
  EXPECT_DOUBLE_EQ(probe->a, 12.0);
  EXPECT_DOUBLE_EQ(probe->b, 2.0);  // fell back to the minimum window
}

TEST(SpanTracer, RearmWithNonzeroBackoffStaysInsideRecovery) {
  SpanTracer tracer;
  tracer.on_event(ev(0.1, EventKind::kRtoFired, 4, /*a=*/0.0));
  // Re-armed mid-backoff: still the same recovery episode.
  tracer.on_event(ev(0.2, EventKind::kRtoArmed, 4, /*a=*/0.4, /*b=*/1.0));
  tracer.on_event(ev(0.3, EventKind::kRtoFired, 4, /*a=*/1.0));
  tracer.on_event(ev(0.5, EventKind::kRtoArmed, 4, /*a=*/0.2, /*b=*/0.0));
  ASSERT_EQ(count_kind(tracer, SpanKind::kRto), 1u);
  const Span* rto = find_span(tracer, SpanKind::kRto, 4);
  EXPECT_TRUE(rto->complete);
  EXPECT_DOUBLE_EQ(rto->end.to_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(rto->b, 2.0);
}

TEST(SpanTracer, FinalizeClosesOpenSpansAsIncomplete) {
  SpanTracer tracer;
  tracer.on_event(ev(0.1, EventKind::kConnSynSent, 9, /*a=*/0.0));
  tracer.finalize(sim::SimTime::seconds(2.0));
  ASSERT_EQ(tracer.spans().size(), 2u);  // connection + handshake
  for (const auto& s : tracer.spans()) {
    EXPECT_FALSE(s.complete);
    EXPECT_DOUBLE_EQ(s.end.to_seconds(), 2.0);
  }
  // Incomplete spans never enter the digest.
  EXPECT_EQ(tracer.stats().completed, 0u);
  EXPECT_EQ(tracer.stats().digest, 0u);
  EXPECT_EQ(tracer.stats().total(), 2u);
}

TEST(SpanTracer, AbortiveCloseLeavesInterruptedSpansIncomplete) {
  SpanTracer tracer;
  tracer.on_event(ev(0.1, EventKind::kConnSynSent, 2, /*a=*/0.0));
  tracer.on_event(ev(0.15, EventKind::kConnEstablished, 2, /*a=*/0.05));
  tracer.on_event(ev(0.2, EventKind::kRtoFired, 2, /*a=*/0.0));
  tracer.on_event(ev(0.4, EventKind::kConnClosed, 2, /*a=*/0.0));  // abort
  const Span* conn = find_span(tracer, SpanKind::kConnection, 2);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->complete);
  EXPECT_DOUBLE_EQ(conn->a, 0.0);
  // The RTO recovery never finished; the close cut it short.
  const Span* rto = find_span(tracer, SpanKind::kRto, 2);
  ASSERT_NE(rto, nullptr);
  EXPECT_FALSE(rto->complete);
  // Slow start ended *because* the connection ended: complete.
  const Span* ss = find_span(tracer, SpanKind::kSlowStart, 2);
  ASSERT_NE(ss, nullptr);
  EXPECT_TRUE(ss->complete);
}

TEST(SpanTracer, MaxSpansDropsNewSpansButClosesOpenOnes) {
  SpanTracer tracer{2};  // room for connection + handshake only
  for (const auto& e : full_lifecycle(1)) tracer.on_event(e);
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_GT(tracer.dropped(), 0u);
  const Span* hs = find_span(tracer, SpanKind::kHandshake, 1);
  ASSERT_NE(hs, nullptr);
  EXPECT_TRUE(hs->complete);  // capped tracer still closes what it opened
  EXPECT_EQ(tracer.stats().dropped, tracer.dropped());
}

TEST(SpanTracer, StatsDigestIsOrderIndependentAcrossFlows) {
  // The same two-flow event multiset, delivered grouped-by-flow vs
  // interleaved (as two shards' streams would arrive) — identical stats.
  const auto flow1 = full_lifecycle(1);
  const auto flow2 = full_lifecycle(2);

  SpanTracer grouped;
  for (const auto& e : flow1) grouped.on_event(e);
  for (const auto& e : flow2) grouped.on_event(e);

  SpanTracer interleaved;
  for (std::size_t i = 0; i < flow1.size(); ++i) {
    interleaved.on_event(flow2[i]);
    interleaved.on_event(flow1[i]);
  }

  const SpanStats a = grouped.stats();
  const SpanStats b = interleaved.stats();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.by_kind, b.by_kind);
  EXPECT_NE(a.digest, 0u);

  // And merging per-flow stats (the sharded path) matches the single
  // tracer that saw everything.
  SpanTracer only1, only2;
  for (const auto& e : flow1) only1.on_event(e);
  for (const auto& e : flow2) only2.on_event(e);
  SpanStats merged = only1.stats();
  merged.merge(only2.stats());
  EXPECT_EQ(merged.digest, a.digest);
  EXPECT_EQ(merged.completed, a.completed);
  EXPECT_EQ(merged.by_kind, a.by_kind);
}

TEST(SpanTracer, JsonlHasOneWellFormedLinePerSpan) {
  SpanTracer tracer;
  for (const auto& e : full_lifecycle(7)) tracer.on_event(e);
  const std::string out = tracer.to_jsonl();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(out.begin(), out.end(), '\n')),
            tracer.spans().size());
  EXPECT_NE(out.find("\"span\":\"handshake\""), std::string::npos);
  EXPECT_NE(out.find("\"span\":\"time_wait\""), std::string::npos);
  EXPECT_NE(out.find("\"complete\":true"), std::string::npos);
  EXPECT_NE(out.find("\"flow\":7"), std::string::npos);
}

}  // namespace
}  // namespace trim::obs
