// Telemetry bundle attachment, the TRIM_TELEMETRY env knob, the CSV
// export gate, and the pluggable log sink the obs warnings route through.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "sim/logging.hpp"

namespace trim::obs {
namespace {

TEST(Telemetry, BareSimulatorHasNoBundleAndEmitIsNoop) {
  sim::Simulator sim;
  EXPECT_EQ(telemetry_of(&sim), nullptr);
  EXPECT_EQ(telemetry_of(nullptr), nullptr);
  emit(&sim, EventKind::kRtoFired, 1, 2.0, 3.0);  // must not crash
}

TEST(Telemetry, AttachRoutesEmitsIntoTheRecorder) {
  sim::Simulator sim;
  Telemetry tele;
  tele.attach(sim);
  ASSERT_EQ(telemetry_of(&sim), &tele);

  emit(&sim, EventKind::kFastRetransmit, 9, 100.0, 8.0);
  EXPECT_EQ(tele.recorder().count(EventKind::kFastRetransmit), 1u);
  // Counts-only tier: nothing retained without an enabled ring.
  EXPECT_EQ(tele.recorder().size(), 0u);

  tele.recorder().enable(16);
  emit(&sim, EventKind::kFastRetransmit, 9, 101.0, 8.0);
  ASSERT_EQ(tele.recorder().size(), 1u);
  EXPECT_DOUBLE_EQ(tele.recorder().event(0).a, 101.0);
}

TEST(Telemetry, PreregisteredCoreHandlesExist) {
  Telemetry tele;
  ASSERT_NE(tele.core().segments_sent, nullptr);
  ASSERT_NE(tele.core().acks_processed, nullptr);
  ASSERT_NE(tele.core().queue_drops, nullptr);
  ASSERT_NE(tele.core().probe_rtt_us, nullptr);
  ASSERT_NE(tele.core().eq3_ep, nullptr);
  tele.core().segments_sent->inc(3);
  const auto snap = tele.snapshot();
  bool found = false;
  for (const auto& c : snap.metrics.counters) {
    if (c.name == "tcp.segments_sent") {
      found = true;
      EXPECT_EQ(c.value, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Telemetry, EnvKnobControlsRingCapacity) {
  ::unsetenv("TRIM_TELEMETRY");
  EXPECT_EQ(env_recorder_capacity(), 0u);
  ::setenv("TRIM_TELEMETRY", "0", 1);
  EXPECT_EQ(env_recorder_capacity(), 0u);
  ::setenv("TRIM_TELEMETRY", "1", 1);
  EXPECT_EQ(env_recorder_capacity(), 8192u);
  ::setenv("TRIM_TELEMETRY", "512", 1);
  EXPECT_EQ(env_recorder_capacity(), 512u);

  sim::Simulator sim;
  Telemetry tele;
  tele.attach(sim);
  EXPECT_TRUE(tele.recorder().ring_enabled());
  EXPECT_EQ(tele.recorder().capacity(), 512u);
  ::unsetenv("TRIM_TELEMETRY");
}

TEST(Telemetry, WorldAttachesItsBundle) {
  exp::World world;
  EXPECT_EQ(telemetry_of(&world.simulator), &world.telemetry);
  const auto snap = world.telemetry_snapshot();
  EXPECT_FALSE(snap.metrics.counters.empty());  // core handles registered
}

TEST(MetricsCsv, GatedByEnvAndWritesTypedRows) {
  ::unsetenv("REPRO_CSV_DIR");
  MetricsRegistry reg;
  reg.counter("tcp.segments_sent")->inc(5);
  EXPECT_EQ(maybe_write_metrics_csv("unit", reg.snapshot()), "");

  char tmpl[] = "/tmp/trim_csv_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  ::setenv("REPRO_CSV_DIR", tmpl, 1);
  reg.gauge("queue.peak")->set(7.0);
  const std::string path = maybe_write_metrics_csv("unit", reg.snapshot());
  ::unsetenv("REPRO_CSV_DIR");
  ASSERT_FALSE(path.empty());
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("counter"), std::string::npos);
  EXPECT_NE(buf.str().find("tcp.segments_sent"), std::string::npos);
  EXPECT_NE(buf.str().find("gauge"), std::string::npos);
  std::remove(path.c_str());
  std::remove(tmpl);
}

TEST(LogSink, CaptureSinkInterceptsAndRestores) {
  {
    sim::CaptureLogSink capture;
    sim::log_message(sim::LogLevel::kWarn, 1.5, "queue %s overflowed", "sw0");
    ASSERT_EQ(capture.records().size(), 1u);
    EXPECT_EQ(capture.records()[0].level, sim::LogLevel::kWarn);
    EXPECT_DOUBLE_EQ(capture.records()[0].sim_time_s, 1.5);
    EXPECT_TRUE(capture.contains("queue sw0 overflowed"));
    capture.clear();
    EXPECT_TRUE(capture.records().empty());
  }
  // Out of scope: the default stderr sink is back (nothing to assert on
  // stderr, but installing/removing again must round-trip cleanly).
  EXPECT_EQ(sim::set_log_sink(nullptr), nullptr);
}

TEST(LogSink, ObsWarningsRouteThroughTheSink) {
  sim::CaptureLogSink capture;
  ::setenv("REPORT_JSON_DIR", "/nonexistent/dir", 1);
  RunReport report{"sink_probe"};
  EXPECT_EQ(report.write(), "");
  ::unsetenv("REPORT_JSON_DIR");
  EXPECT_TRUE(capture.contains("run report"));
}

}  // namespace
}  // namespace trim::obs
