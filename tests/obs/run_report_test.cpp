// Run-report schema and write-path tests, plus the REPRO_JOBS merge
// determinism contract: the deterministic sections of a report built from
// a parallel sweep must be identical at any pool width.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "exp/concurrency_scenario.hpp"
#include "exp/experiment.hpp"
#include "exp/parallel_runner.hpp"
#include "obs/run_report.hpp"

namespace trim::obs {
namespace {

RunReport sample_report() {
  RunReport report{"unit"};
  report.add_scalar("goodput_mbps", 941.5);
  FlowSummary fs;
  fs.flow = 3;
  fs.protocol = "trim";
  fs.completion_s = 0.125;
  fs.retransmits = 2;
  report.add_flow(fs);
  report.add_row("point_a", {{"act_ms", 1.25}, {"timeouts", 0.0}});

  TelemetrySnapshot tele;
  MetricsRegistry reg;
  reg.counter("tcp.segments_sent")->inc(10);
  tele.metrics = reg.snapshot();
  tele.events.by_kind[static_cast<std::size_t>(EventKind::kTrimProbeEnter)] = 4;
  report.set_telemetry(std::move(tele));
  report.set_profile({{"sweep.job", 2, 1234, 2}});
  return report;
}

TEST(RunReport, JsonCarriesEverySection) {
  const std::string json = sample_report().to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"report\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"quick\":"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos);
  EXPECT_NE(json.find("\"goodput_mbps\": 941.5"), std::string::npos);
  EXPECT_NE(json.find("\"tcp.segments_sent\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"trim.probe_enter\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"flows_truncated\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"protocol\": \"trim\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"point_a\""), std::string::npos);
  EXPECT_NE(json.find("\"act_ms\": 1.25"), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"sweep.job\""), std::string::npos);
}

TEST(RunReport, ZeroCountEventsAreOmitted) {
  const std::string json = sample_report().to_json();
  EXPECT_EQ(json.find("\"rto.fired\""), std::string::npos);
  EXPECT_EQ(json.find("\"link.enqueued\""), std::string::npos);
}

TEST(RunReport, FlowCapTruncatesAndCounts) {
  RunReport report{"cap"};
  for (std::size_t i = 0; i < RunReport::kMaxFlows + 10; ++i) {
    FlowSummary fs;
    fs.flow = static_cast<std::uint32_t>(i);
    report.add_flow(fs);
  }
  EXPECT_EQ(report.flows_truncated(), 10u);
  EXPECT_NE(report.to_json().find("\"flows_truncated\": 10"), std::string::npos);
}

TEST(RunReport, WriteHonorsReportJsonDir) {
  char tmpl[] = "/tmp/trim_report_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  ::setenv("REPORT_JSON_DIR", tmpl, 1);
  const std::string path = sample_report().write();
  ::unsetenv("REPORT_JSON_DIR");
  ASSERT_EQ(path, std::string{tmpl} + "/REPORT_unit.json");
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), sample_report().to_json());
  std::remove(path.c_str());
  std::remove(tmpl);
}

TEST(RunReport, WriteToUnwritableDirReturnsEmptyNotThrow) {
  ::setenv("REPORT_JSON_DIR", "/nonexistent/dir", 1);
  EXPECT_EQ(sample_report().write(), "");
  ::unsetenv("REPORT_JSON_DIR");
}

// Same sweep, pool width 1 vs 4: telemetry merged in submission order
// must produce identical metrics and event counts (the "profile" section
// is the only nondeterministic part of a report, and it is not merged
// here).
TEST(RunReport, ParallelMergeIsDeterministicAcrossJobWidths) {
  std::vector<exp::ConcurrencyConfig> cfgs;
  for (int spts : {2, 3}) {
    exp::ConcurrencyConfig cfg;
    cfg.protocol = tcp::Protocol::kTrim;
    cfg.num_spt_servers = spts;
    cfg.num_lpt_servers = 1;
    cfg.seed = 42 + static_cast<std::uint64_t>(spts);
    cfgs.push_back(cfg);
  }

  auto merged_json = [&](int jobs) {
    std::vector<exp::ConcurrencyResult> results(cfgs.size());
    exp::for_each_index(cfgs.size(), jobs, [&](std::size_t i) {
      results[i] = exp::run_concurrency(cfgs[i]);
    });
    TelemetrySnapshot tele;
    for (const auto& r : results) tele.merge(r.telemetry);
    RunReport report{"determinism"};
    report.set_telemetry(std::move(tele));
    return report.to_json();
  };

  const auto serial = merged_json(1);
  const auto pooled = merged_json(4);
  // peak_rss_bytes legitimately differs between the two invocations;
  // strip that single line before comparing.
  auto strip_rss = [](std::string s) {
    const auto pos = s.find("\"peak_rss_bytes\"");
    const auto end = s.find('\n', pos);
    s.erase(pos, end - pos);
    return s;
  };
  EXPECT_EQ(strip_rss(serial), strip_rss(pooled));
  EXPECT_NE(serial.find("\"tcp.segments_sent\""), std::string::npos);
  EXPECT_NE(serial.find("\"trim.probe_enter\""), std::string::npos);
}

}  // namespace
}  // namespace trim::obs
