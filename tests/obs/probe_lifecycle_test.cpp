// Flight-recorder replay of TCP-TRIM's probe lifecycle on a canned
// two-host scenario: the recorded event stream must show the exact
// Algorithm 1 sequence — gap detected, probe mode entered, two probes
// sent, their ACKs (or the probe timeout), and the Eq. 1 / Eq. 3 window
// arithmetic carried in the event payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/trim_sender.hpp"
#include "fault/fault_injector.hpp"
#include "obs/telemetry.hpp"
#include "tcp/tcp_receiver.hpp"
#include "../tcp/tcp_test_util.hpp"

namespace trim::obs {
namespace {

using test::HostPair;

core::TrimConfig gig_trim() {
  return core::TrimConfig::for_link(1'000'000'000, 1460);
}

struct Rig {
  explicit Rig(HostPair& net, core::TrimConfig trim, tcp::TcpConfig cfg = {})
      : receiver{&net.b, 1, net.a.id()},
        sender{&net.a, net.b.id(), 1, cfg, trim} {}
  tcp::TcpReceiver receiver;
  core::TrimSender sender;
};

// Only the probe state machine, in emission order.
std::vector<RecordedEvent> probe_events(const FlightRecorder& rec) {
  std::vector<RecordedEvent> out;
  for (const auto& e : rec.events()) {
    switch (e.kind) {
      case EventKind::kTrimGapDetected:
      case EventKind::kTrimProbeEnter:
      case EventKind::kTrimProbeSent:
      case EventKind::kTrimProbeAck:
      case EventKind::kTrimProbeTimeout:
      case EventKind::kTrimResumeEq1:
        out.push_back(e);
        break;
      default:
        break;
    }
  }
  return out;
}

// Healthy path: train 1 builds the window, an idle gap triggers probing,
// both probe ACKs return in time, and Eq. 1 resumes from the saved cwnd.
TEST(ProbeLifecycle, GapTwoProbesAcksThenEq1Resume) {
  HostPair net;
  Telemetry tele;
  tele.attach(net.sim);
  tele.recorder().enable(65536);
  Rig f{net, gig_trim()};

  f.sender.write(200 * 1460);
  net.sim.run();
  ASSERT_TRUE(f.sender.idle());
  const double cwnd_before_gap = f.sender.cwnd();
  ASSERT_GT(cwnd_before_gap, 2.0);

  net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(50 * 1460); });
  net.sim.run();

  const auto seq = probe_events(tele.recorder());
  ASSERT_EQ(seq.size(), 7u);
  EXPECT_EQ(seq[0].kind, EventKind::kTrimGapDetected);
  EXPECT_GT(seq[0].a, 0.0);       // the idle gap, in seconds
  EXPECT_GT(seq[0].a, seq[0].b);  // gap exceeded the smooth RTT threshold

  EXPECT_EQ(seq[1].kind, EventKind::kTrimProbeEnter);
  EXPECT_DOUBLE_EQ(seq[1].a, cwnd_before_gap);  // saved cwnd
  EXPECT_DOUBLE_EQ(seq[1].b, 2.0);              // Algorithm 1: two probes

  EXPECT_EQ(seq[2].kind, EventKind::kTrimProbeSent);
  EXPECT_EQ(seq[3].kind, EventKind::kTrimProbeSent);
  EXPECT_DOUBLE_EQ(seq[2].b, 1.0);
  EXPECT_DOUBLE_EQ(seq[3].b, 2.0);
  EXPECT_DOUBLE_EQ(seq[3].a, seq[2].a + 1.0);  // consecutive probe segments

  EXPECT_EQ(seq[4].kind, EventKind::kTrimProbeAck);
  EXPECT_EQ(seq[5].kind, EventKind::kTrimProbeAck);
  EXPECT_GT(seq[4].b, 0.0);  // measured probe RTTs
  EXPECT_GT(seq[5].b, 0.0);

  EXPECT_EQ(seq[6].kind, EventKind::kTrimResumeEq1);
  // Replay Eq. 1 from the event payloads alone: tuned cwnd must equal
  // s_cwnd * (1 - (probe_RTT - min_RTT)/min_RTT), clamped at the floor.
  const double saved = seq[1].a;
  const double probe_rtt_s = seq[6].b;
  const double min_rtt_s = f.sender.min_rtt().to_seconds();
  const double expected =
      std::max(2.0, saved * (1.0 - (probe_rtt_s - min_rtt_s) / min_rtt_s));
  EXPECT_NEAR(seq[6].a, expected, 1e-9);
  EXPECT_GE(seq[6].a, 2.0);

  // All lifecycle events carry the emitting flow id.
  for (const auto& e : seq) EXPECT_EQ(e.subject, f.sender.flow_id());

  // The probe RTT histogram saw exactly the two probe ACKs.
  EXPECT_EQ(tele.core().probe_rtt_us->count(), 2u);
  EXPECT_EQ(tele.recorder().count(EventKind::kTrimProbeAck), 2u);
}

// Degraded path: the path delay jumps while idle, so no probe ACK makes
// the smooth-RTT deadline — the recorder must show the timeout resume at
// the minimum window instead of Eq. 1.
TEST(ProbeLifecycle, LateAcksRecordProbeTimeoutAtFloor) {
  HostPair net;
  Telemetry tele;
  tele.attach(net.sim);
  tele.recorder().enable(65536);
  fault::FaultInjector inj{&net.sim, fault::FaultConfig{}};
  inj.attach(*net.ab);
  Rig f{net, gig_trim()};

  f.sender.write(200 * 1460);
  net.sim.run();
  const double cwnd_before_gap = f.sender.cwnd();
  ASSERT_GT(cwnd_before_gap, 2.0);

  inj.set_added_delay(sim::SimTime::millis(5));
  net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(50 * 1460); });
  net.sim.run();

  ASSERT_GE(tele.recorder().count(EventKind::kTrimProbeTimeout), 1u);
  const auto timeouts = tele.recorder().events(EventKind::kTrimProbeTimeout);
  EXPECT_DOUBLE_EQ(timeouts[0].a, 2.0);               // resume at the floor
  EXPECT_DOUBLE_EQ(timeouts[0].b, cwnd_before_gap);   // the cwnd it gave up
  EXPECT_EQ(tele.recorder().count(EventKind::kTrimResumeEq1), 0u);

  // The gap/enter/sent prefix is unchanged on the degraded path.
  const auto seq = probe_events(tele.recorder());
  ASSERT_GE(seq.size(), 4u);
  EXPECT_EQ(seq[0].kind, EventKind::kTrimGapDetected);
  EXPECT_EQ(seq[1].kind, EventKind::kTrimProbeEnter);
  EXPECT_EQ(seq[2].kind, EventKind::kTrimProbeSent);
  EXPECT_EQ(seq[3].kind, EventKind::kTrimProbeSent);
}

// Queue control: with a tiny K every congested ACK triggers an Eq. 3 cut;
// the event payload carries ep in (0, 1) and the histogram records it.
TEST(ProbeLifecycle, Eq3CutsRecordCongestionExtent) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50)};
  Telemetry tele;
  tele.attach(net.sim);
  tele.recorder().enable(65536);

  auto trim = gig_trim();
  trim.k_override = sim::SimTime::micros(120);  // just above the base RTT
  Rig f{net, trim};

  f.sender.write(2000 * 1460);  // long train: the queue builds, RTT > K
  net.sim.run();

  const auto cuts = tele.recorder().events(EventKind::kTrimQueueCutEq3);
  ASSERT_FALSE(cuts.empty());
  double max_ep = 0.0;
  for (const auto& e : cuts) {
    EXPECT_GE(e.a, 0.0);   // ep = (RTT - K)/RTT; 0 exactly when RTT == K
    EXPECT_LT(e.a, 1.0);
    EXPECT_GE(e.b, 2.0);   // cwnd after the cut stays >= the floor
    max_ep = std::max(max_ep, e.a);
  }
  EXPECT_GT(max_ep, 0.0);  // the queue did push some RTT past K
  EXPECT_EQ(tele.core().eq3_ep->count(),
            tele.recorder().count(EventKind::kTrimQueueCutEq3));
}

// No telemetry attached: the same scenario runs with every emit site
// degrading to a null-pointer test, and the simulation output matches the
// instrumented run exactly (byte-identical disabled path).
TEST(ProbeLifecycle, DisabledTelemetryIsByteIdentical) {
  auto run = [](bool instrument) {
    HostPair net;
    Telemetry tele;
    if (instrument) {
      tele.attach(net.sim);
      tele.recorder().enable(1024);
    }
    Rig f{net, gig_trim()};
    f.sender.write(200 * 1460);
    net.sim.run();
    net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(50 * 1460); });
    net.sim.run();
    return std::tuple{f.sender.cwnd(), f.receiver.delivered_bytes(),
                      net.sim.now().ns(), f.sender.stats().probe_rounds};
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace trim::obs
