// Unit tests for the obs layer: metrics registry, flight recorder,
// subject ids, JSONL formatting, and the scoped profiler.
#include <gtest/gtest.h>

#include <thread>

#include "obs/events.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "sim/config_error.hpp"

namespace trim::obs {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* c = reg.counter("tcp.segments_sent");
  EXPECT_EQ(c, reg.counter("tcp.segments_sent"));
  c->inc();
  c->inc(4);
  EXPECT_EQ(c->value, 5u);

  Gauge* g = reg.gauge("queue.depth");
  g->set(17.5);
  EXPECT_EQ(g, reg.gauge("queue.depth"));
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(MetricsRegistry, HistogramBucketsAndOverflow) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("rtt_us", 0.0, 100.0, 10);
  h->observe(-1.0);   // underflow
  h->observe(0.0);    // first bucket
  h->observe(55.0);   // bucket 5
  h->observe(99.99);  // last bucket
  h->observe(100.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h->underflow(), 1u);
  EXPECT_EQ(h->overflow(), 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->bin(0), 1u);
  EXPECT_EQ(h->bin(5), 1u);
  EXPECT_EQ(h->bin(9), 1u);
  EXPECT_DOUBLE_EQ(h->sum(), -1.0 + 0.0 + 55.0 + 99.99 + 100.0);
}

TEST(MetricsRegistry, HistogramShapeMismatchThrows) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("rtt_us", 0.0, 100.0, 10);
  EXPECT_EQ(h, reg.histogram("rtt_us", 0.0, 100.0, 10));  // same shape: fine
  EXPECT_THROW(reg.histogram("rtt_us", 0.0, 200.0, 10), ConfigError);
  EXPECT_THROW(reg.histogram("rtt_us", 0.0, 100.0, 20), ConfigError);
}

TEST(MetricsSnapshot, SortedByNameAndMergeSemantics) {
  MetricsRegistry a;
  a.counter("z.late")->inc(1);
  a.counter("a.early")->inc(2);
  a.gauge("peak")->set(3.0);
  a.histogram("h", 0.0, 10.0, 2)->observe(1.0);

  MetricsRegistry b;
  b.counter("a.early")->inc(10);
  b.counter("m.only_b")->inc(7);
  b.gauge("peak")->set(9.0);
  b.histogram("h", 0.0, 10.0, 2)->observe(6.0);

  auto sa = a.snapshot();
  ASSERT_EQ(sa.counters.size(), 2u);
  EXPECT_EQ(sa.counters[0].name, "a.early");  // sorted
  EXPECT_EQ(sa.counters[1].name, "z.late");

  sa.merge(b.snapshot());
  ASSERT_EQ(sa.counters.size(), 3u);
  EXPECT_EQ(sa.counters[0].value, 12u);  // counters add
  EXPECT_EQ(sa.counters[1].name, "m.only_b");
  EXPECT_EQ(sa.counters[1].value, 7u);
  ASSERT_EQ(sa.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(sa.gauges[0].value, 9.0);  // gauges keep the max
  ASSERT_EQ(sa.histograms.size(), 1u);
  EXPECT_EQ(sa.histograms[0].count, 2u);  // histograms add bucket-wise
  EXPECT_EQ(sa.histograms[0].bins[0], 1u);
  EXPECT_EQ(sa.histograms[0].bins[1], 1u);
}

TEST(MetricsSnapshot, MergeMismatchedHistogramShapeKeepsFirst) {
  MetricsRegistry a, b;
  a.histogram("h", 0.0, 10.0, 2)->observe(1.0);
  b.histogram("h", 0.0, 20.0, 4)->observe(15.0);
  auto sa = a.snapshot();
  sa.merge(b.snapshot());
  ASSERT_EQ(sa.histograms.size(), 1u);
  EXPECT_EQ(sa.histograms[0].bins.size(), 2u);
  EXPECT_EQ(sa.histograms[0].count, 1u);
}

TEST(MetricsSnapshot, ToJsonContainsAllSections) {
  MetricsRegistry reg;
  reg.counter("c")->inc(3);
  reg.gauge("g")->set(1.5);
  reg.histogram("h", 0.0, 1.0, 2)->observe(0.25);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(SubjectId, StableAndDistinguishesNames) {
  constexpr std::uint32_t a = subject_id("switch->client");
  static_assert(a == subject_id("switch->client"));
  EXPECT_NE(subject_id("a->b"), subject_id("b->a"));
}

TEST(FlightRecorder, CountsWithoutRing) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.ring_enabled());
  rec.emit(sim::SimTime::millis(1), EventKind::kRtoFired, 7, 1.0, 2.0);
  rec.emit(sim::SimTime::millis(2), EventKind::kRtoFired, 7);
  EXPECT_EQ(rec.count(EventKind::kRtoFired), 2u);
  EXPECT_EQ(rec.total_emitted(), 2u);
  EXPECT_EQ(rec.size(), 0u);  // nothing retained: ring is off
}

TEST(FlightRecorder, RingOverwritesOldestWhenFull) {
  FlightRecorder rec;
  rec.enable(3);
  for (int i = 0; i < 5; ++i) {
    rec.emit(sim::SimTime::millis(i), EventKind::kLinkEnqueued,
             static_cast<std::uint32_t>(i), i, 0.0);
  }
  EXPECT_EQ(rec.total_emitted(), 5u);
  ASSERT_EQ(rec.size(), 3u);
  // Oldest-first snapshot holds the 3 most recent events: subjects 2, 3, 4.
  EXPECT_EQ(rec.event(0).subject, 2u);
  EXPECT_EQ(rec.event(1).subject, 3u);
  EXPECT_EQ(rec.event(2).subject, 4u);
  const auto all = rec.events();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front().subject, 2u);
  EXPECT_EQ(all.back().subject, 4u);
}

TEST(FlightRecorder, EventsByKindAndClear) {
  FlightRecorder rec;
  rec.enable(8);
  rec.emit(sim::SimTime::millis(1), EventKind::kRtoArmed, 1);
  rec.emit(sim::SimTime::millis(2), EventKind::kFastRetransmit, 1, 42.0, 8.0);
  rec.emit(sim::SimTime::millis(3), EventKind::kRtoArmed, 1);
  const auto armed = rec.events(EventKind::kRtoArmed);
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0].at, sim::SimTime::millis(1));
  const auto fr = rec.events(EventKind::kFastRetransmit);
  ASSERT_EQ(fr.size(), 1u);
  EXPECT_DOUBLE_EQ(fr[0].a, 42.0);

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.count(EventKind::kRtoArmed), 0u);
  EXPECT_TRUE(rec.ring_enabled());  // capacity survives clear()
}

TEST(FlightRecorder, JsonlSchema) {
  FlightRecorder rec;
  rec.enable(4);
  rec.emit(sim::SimTime::millis(1), EventKind::kTrimProbeEnter, 5, 40.0, 2.0);
  const std::string jsonl = rec.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"trim.probe_enter\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"t\":0.001"), std::string::npos);
  EXPECT_NE(jsonl.find("\"subject\":5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"a\":40"), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');
}

TEST(EventCounts, MergeAddsPerKind) {
  EventCounts a, b;
  a.by_kind[static_cast<std::size_t>(EventKind::kRtoFired)] = 2;
  b.by_kind[static_cast<std::size_t>(EventKind::kRtoFired)] = 3;
  b.by_kind[static_cast<std::size_t>(EventKind::kTrimGapDetected)] = 1;
  a.merge(b);
  EXPECT_EQ(a[EventKind::kRtoFired], 5u);
  EXPECT_EQ(a[EventKind::kTrimGapDetected], 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(EventKindNames, AllKindsHaveDottedNames) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const std::string name = to_string(static_cast<EventKind>(k));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name.find('.'), std::string::npos) << name;
  }
}

TEST(Profiler, ScopedTimerAccumulatesCallsAndItems) {
  Profiler prof;
  {
    ScopedTimer t{prof, "phase.a"};
    t.add_items(9);
  }
  { ScopedTimer t{prof, "phase.a"}; }
  { ScopedTimer t{prof, "phase.b"}; }
  const auto snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "phase.a");  // sorted by name
  EXPECT_EQ(snap[0].calls, 2u);
  EXPECT_EQ(snap[0].items, 11u);  // each timer counts 1 + 9 extra
  EXPECT_EQ(snap[1].name, "phase.b");
  prof.clear();
  EXPECT_TRUE(prof.snapshot().empty());
}

TEST(Profiler, ThreadSafeAdds) {
  Profiler prof;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&prof] {
      for (int i = 0; i < 1000; ++i) prof.add("contended", 1, 1);
    });
  }
  for (auto& th : pool) th.join();
  const auto snap = prof.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].calls, 4000u);
  EXPECT_EQ(snap[0].wall_ns, 4000u);
}

}  // namespace
}  // namespace trim::obs
