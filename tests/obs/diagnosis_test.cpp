// Collapse-detector unit tests: synthetic event streams with known
// episodes through each detector, plus the order-independence of the
// diagnose_episodes() replay entry point.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "obs/diagnosis.hpp"

namespace trim::obs {
namespace {

RecordedEvent ev(double t, EventKind kind, std::uint32_t subject,
                 double a = 0.0, double b = 0.0) {
  return RecordedEvent{sim::SimTime::seconds(t), kind, subject, a, b};
}

// ---- rto_sync ----

TEST(RtoSyncDetector, ThreeFlowsInWindowOpenOneBoundedEpisode) {
  RtoSyncDetector d;  // min_flows 3, window 100 ms, quiet 300 ms
  d.on_event(ev(1.000, EventKind::kRtoFired, 1));
  d.on_event(ev(1.010, EventKind::kRtoFired, 2));
  d.on_event(ev(1.020, EventKind::kRtoFired, 3));
  d.finalize(sim::SimTime::seconds(1.5));  // past the quiet gap

  ASSERT_EQ(d.episodes().size(), 1u);
  const DiagnosedEpisode& e = d.episodes().front();
  EXPECT_EQ(e.kind, DetectorKind::kRtoSync);
  // The episode starts at the first event of the burst, not the one that
  // tripped the threshold.
  EXPECT_DOUBLE_EQ(e.start.to_seconds(), 1.000);
  EXPECT_DOUBLE_EQ(e.end.to_seconds(), 1.020);
  EXPECT_EQ(e.flows, 3u);
  EXPECT_EQ(e.events, 3u);
  EXPECT_DOUBLE_EQ(e.attribution, 1.0);  // one fire per flow
  EXPECT_FALSE(e.open);
  ASSERT_EQ(e.sample_count, 3u);
}

TEST(RtoSyncDetector, TwoFlowsNeverTrigger) {
  RtoSyncDetector d;
  for (int burst = 0; burst < 5; ++burst) {
    const double t = 1.0 + burst;
    d.on_event(ev(t, EventKind::kRtoFired, 1));
    d.on_event(ev(t + 0.01, EventKind::kRtoFired, 2));
  }
  d.finalize(sim::SimTime::seconds(10.0));
  EXPECT_TRUE(d.episodes().empty());
}

TEST(RtoSyncDetector, RepeatedFiresRaiseAttributionAboveOne) {
  RtoSyncDetector d;
  d.on_event(ev(1.000, EventKind::kRtoFired, 1));
  d.on_event(ev(1.010, EventKind::kRtoFired, 2));
  d.on_event(ev(1.020, EventKind::kRtoFired, 3));
  d.on_event(ev(1.050, EventKind::kRtoFired, 1));  // second backoff round
  d.on_event(ev(1.060, EventKind::kRtoFired, 2));
  d.finalize(sim::SimTime::seconds(2.0));

  ASSERT_EQ(d.episodes().size(), 1u);
  const DiagnosedEpisode& e = d.episodes().front();
  EXPECT_EQ(e.flows, 3u);
  EXPECT_EQ(e.events, 5u);
  EXPECT_DOUBLE_EQ(e.end.to_seconds(), 1.060);
  EXPECT_DOUBLE_EQ(e.attribution, 5.0 / 3.0);
}

TEST(RtoSyncDetector, QuietGapSplitsBurstsIntoSeparateEpisodes) {
  RtoSyncDetector d;
  for (std::uint32_t f = 1; f <= 3; ++f) {
    d.on_event(ev(1.0 + 0.01 * f, EventKind::kRtoFired, f));
  }
  // 0.97 s of silence, then a second synchronized burst.
  for (std::uint32_t f = 4; f <= 6; ++f) {
    d.on_event(ev(2.0 + 0.01 * f, EventKind::kRtoFired, f));
  }
  d.finalize(sim::SimTime::seconds(3.0));

  ASSERT_EQ(d.episodes().size(), 2u);
  EXPECT_DOUBLE_EQ(d.episodes()[0].start.to_seconds(), 1.01);
  EXPECT_DOUBLE_EQ(d.episodes()[0].end.to_seconds(), 1.03);
  EXPECT_FALSE(d.episodes()[0].open);
  EXPECT_DOUBLE_EQ(d.episodes()[1].start.to_seconds(), 2.04);
  EXPECT_DOUBLE_EQ(d.episodes()[1].end.to_seconds(), 2.06);
  EXPECT_EQ(d.episodes()[1].flows, 3u);
}

TEST(RtoSyncDetector, RunEndingMidEpisodeMarksItOpen) {
  RtoSyncDetector d;
  d.on_event(ev(1.000, EventKind::kRtoFired, 1));
  d.on_event(ev(1.010, EventKind::kRtoFired, 2));
  d.on_event(ev(1.020, EventKind::kRtoFired, 3));
  d.finalize(sim::SimTime::seconds(1.1));  // inside the quiet window
  ASSERT_EQ(d.episodes().size(), 1u);
  EXPECT_TRUE(d.episodes().front().open);
}

// ---- backlog_saturation ----

TEST(BacklogSaturationDetector, VolumeGateAndRstFractionAttribution) {
  BacklogSaturationDetector d;  // min_drops 4, window 50 ms, quiet 200 ms
  // One listener (subject 42); alternate RST-policy (b=1) and silent
  // drops (b=0).
  d.on_event(ev(1.000, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  d.on_event(ev(1.010, EventKind::kBacklogDrop, 42, 2.0, 0.0));
  d.on_event(ev(1.020, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  d.on_event(ev(1.030, EventKind::kBacklogDrop, 42, 2.0, 0.0));
  d.finalize(sim::SimTime::seconds(2.0));

  ASSERT_EQ(d.episodes().size(), 1u);
  const DiagnosedEpisode& e = d.episodes().front();
  EXPECT_EQ(e.kind, DetectorKind::kBacklogSaturation);
  EXPECT_DOUBLE_EQ(e.start.to_seconds(), 1.000);
  EXPECT_DOUBLE_EQ(e.end.to_seconds(), 1.030);
  EXPECT_EQ(e.flows, 1u);  // flow identity is the listener
  EXPECT_EQ(e.events, 4u);
  EXPECT_DOUBLE_EQ(e.attribution, 0.5);  // half answered with RST
  EXPECT_FALSE(e.open);
}

TEST(BacklogSaturationDetector, BelowMinDropsStaysQuiet) {
  BacklogSaturationDetector d;
  d.on_event(ev(1.000, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  d.on_event(ev(1.010, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  d.on_event(ev(1.020, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  d.finalize(sim::SimTime::seconds(2.0));
  EXPECT_TRUE(d.episodes().empty());
}

TEST(BacklogSaturationDetector, SpreadOutDropsNeverFillTheWindow) {
  BacklogSaturationDetector d;
  // Four drops, but 100 ms apart — never 4 inside one 50 ms window.
  for (int i = 0; i < 4; ++i) {
    d.on_event(ev(1.0 + 0.1 * i, EventKind::kBacklogDrop, 42, 2.0, 1.0));
  }
  d.finalize(sim::SimTime::seconds(2.0));
  EXPECT_TRUE(d.episodes().empty());
}

// ---- throughput_collapse ----

TEST(ThroughputCollapseDetector, InheritedWindowAttributionFromResumes) {
  ThroughputCollapseDetector d;  // min_flows 3, lookback 200 ms
  // Flows 1 and 2 resume an Eq. 1 window just before the loss burst;
  // flow 3 collapses without a recent resume.
  d.on_event(ev(0.950, EventKind::kTrimResumeEq1, 1, 6.0));
  d.on_event(ev(0.960, EventKind::kTrimResumeEq1, 2, 8.0));
  d.on_event(ev(1.000, EventKind::kRtoFired, 1));
  d.on_event(ev(1.010, EventKind::kFastRetransmit, 2));
  d.on_event(ev(1.020, EventKind::kTrimQueueCutEq3, 3, 0.4, 5.0));
  d.finalize(sim::SimTime::seconds(2.0));

  ASSERT_EQ(d.episodes().size(), 1u);
  const DiagnosedEpisode& e = d.episodes().front();
  EXPECT_EQ(e.kind, DetectorKind::kThroughputCollapse);
  EXPECT_DOUBLE_EQ(e.start.to_seconds(), 1.000);
  EXPECT_DOUBLE_EQ(e.end.to_seconds(), 1.020);
  EXPECT_EQ(e.flows, 3u);
  EXPECT_EQ(e.events, 3u);
  EXPECT_DOUBLE_EQ(e.attribution, 2.0 / 3.0);
}

TEST(ThroughputCollapseDetector, StaleResumeDoesNotImplicate) {
  ThroughputCollapseDetector d;
  // The resume is 0.5 s before the loss — beyond the 200 ms lookback.
  d.on_event(ev(0.500, EventKind::kTrimResumeEq1, 1, 6.0));
  d.on_event(ev(1.000, EventKind::kRtoFired, 1));
  d.on_event(ev(1.010, EventKind::kRtoFired, 2));
  d.on_event(ev(1.020, EventKind::kRtoFired, 3));
  d.finalize(sim::SimTime::seconds(2.0));
  ASSERT_EQ(d.episodes().size(), 1u);
  EXPECT_DOUBLE_EQ(d.episodes().front().attribution, 0.0);
}

TEST(ThroughputCollapseDetector, ResumesAloneAreNotLossSignals) {
  ThroughputCollapseDetector d;
  for (std::uint32_t f = 1; f <= 6; ++f) {
    d.on_event(ev(1.0 + 0.01 * f, EventKind::kTrimResumeEq1, f, 6.0));
  }
  d.finalize(sim::SimTime::seconds(2.0));
  EXPECT_TRUE(d.episodes().empty());
}

// ---- diagnose_episodes / DetectorSet ----

std::vector<RecordedEvent> mixed_pathology() {
  std::vector<RecordedEvent> events;
  // A backlog burst on listener 42 ...
  for (int i = 0; i < 5; ++i) {
    events.push_back(
        ev(0.50 + 0.005 * i, EventKind::kBacklogDrop, 42, 3.0, 1.0));
  }
  // ... then resumes followed by a synchronized loss burst (trips both
  // rto_sync and throughput_collapse).
  events.push_back(ev(0.950, EventKind::kTrimResumeEq1, 1, 6.0));
  events.push_back(ev(0.960, EventKind::kTrimResumeEq1, 2, 8.0));
  for (std::uint32_t f = 1; f <= 4; ++f) {
    events.push_back(ev(1.0 + 0.01 * f, EventKind::kRtoFired, f));
  }
  return events;
}

bool same_episode(const DiagnosedEpisode& x, const DiagnosedEpisode& y) {
  return x.kind == y.kind && x.start == y.start && x.end == y.end &&
         x.flows == y.flows && x.events == y.events &&
         x.attribution == y.attribution && x.open == y.open &&
         x.sample_count == y.sample_count && x.sample_flows == y.sample_flows;
}

TEST(DiagnoseEpisodes, ArrivalOrderDoesNotMatter) {
  const auto finalize_at = sim::SimTime::seconds(2.0);
  std::vector<RecordedEvent> in_order = mixed_pathology();

  // Reversed, and rotated: the orders a sharded run could stage in.
  std::vector<RecordedEvent> reversed{in_order.rbegin(), in_order.rend()};
  std::vector<RecordedEvent> rotated = in_order;
  std::rotate(rotated.begin(), rotated.begin() + 4, rotated.end());

  const auto base = diagnose_episodes(in_order, finalize_at);
  const auto rev = diagnose_episodes(reversed, finalize_at);
  const auto rot = diagnose_episodes(rotated, finalize_at);

  ASSERT_EQ(base.size(), 3u);  // backlog + rto_sync + collapse
  ASSERT_EQ(rev.size(), base.size());
  ASSERT_EQ(rot.size(), base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_TRUE(same_episode(base[i], rev[i])) << "episode " << i;
    EXPECT_TRUE(same_episode(base[i], rot[i])) << "episode " << i;
  }
}

TEST(DiagnoseEpisodes, ReportsAllThreeDetectorKinds) {
  const auto episodes =
      diagnose_episodes(mixed_pathology(), sim::SimTime::seconds(2.0));
  std::array<std::size_t, 3> by_kind{};
  for (const auto& e : episodes) {
    ++by_kind[static_cast<std::size_t>(e.kind)];
    EXPECT_LE(e.start, e.end);
    EXPECT_FALSE(e.open);
  }
  EXPECT_EQ(by_kind[static_cast<std::size_t>(DetectorKind::kRtoSync)], 1u);
  EXPECT_EQ(
      by_kind[static_cast<std::size_t>(DetectorKind::kBacklogSaturation)], 1u);
  EXPECT_EQ(
      by_kind[static_cast<std::size_t>(DetectorKind::kThroughputCollapse)],
      1u);
}

TEST(DiagnoseEpisodes, EmptyStreamDiagnosesNothing) {
  EXPECT_TRUE(diagnose_episodes({}, sim::SimTime::seconds(1.0)).empty());
}

TEST(DiagnosedEpisode, JsonCarriesKindBoundsAndAttribution) {
  const auto episodes =
      diagnose_episodes(mixed_pathology(), sim::SimTime::seconds(2.0));
  ASSERT_FALSE(episodes.empty());
  std::string out;
  append_episode_json(out, episodes.front());
  EXPECT_NE(out.find("\"kind\": \"rto_sync\""), std::string::npos);
  EXPECT_NE(out.find("\"start\": "), std::string::npos);
  EXPECT_NE(out.find("\"attribution\": "), std::string::npos);
  EXPECT_NE(out.find("\"sample_flows\": ["), std::string::npos);
}

}  // namespace
}  // namespace trim::obs
