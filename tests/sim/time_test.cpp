#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace trim::sim {
namespace {

TEST(SimTime, NamedConstructorsAgree) {
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::millis(1000));
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, ConversionsRoundTrip) {
  const auto t = SimTime::micros(1234);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 0.001234);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1.234);
  EXPECT_DOUBLE_EQ(t.to_micros(), 1234.0);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::millis(3);
  const auto b = SimTime::millis(1);
  EXPECT_EQ(a + b, SimTime::millis(4));
  EXPECT_EQ(a - b, SimTime::millis(2));
  EXPECT_EQ(a * 3, SimTime::millis(9));
  EXPECT_EQ(3 * a, SimTime::millis(9));
  EXPECT_EQ(a / 3, SimTime::millis(1));
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimTime::millis(4));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, ComparisonIsTotal) {
  EXPECT_LT(SimTime::micros(1), SimTime::micros(2));
  EXPECT_LE(SimTime::micros(2), SimTime::micros(2));
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e6));
}

TEST(SimTime, ScaledAppliesFraction) {
  EXPECT_EQ(SimTime::micros(100).scaled(0.25), SimTime::micros(25));
  EXPECT_EQ(SimTime::micros(100).scaled(0.0), SimTime::zero());
}

TEST(TransmissionTime, MatchesHandComputedValues) {
  // 1500 bytes at 1 Gbps = 12 us.
  EXPECT_EQ(transmission_time(1500, 1'000'000'000), SimTime::micros(12));
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(transmission_time(1500, 10'000'000'000ull), SimTime::nanos(1200));
  // 100 Mbps: 1500 bytes = 120 us.
  EXPECT_EQ(transmission_time(1500, 100'000'000), SimTime::micros(120));
}

TEST(TransmissionTime, NoOverflowForLargePayloads) {
  // 4 GB at 100 Gbps — would overflow naive 64-bit math in bits*1e9.
  const auto t = transmission_time(4'000'000'000ull, 100'000'000'000ull);
  EXPECT_NEAR(t.to_seconds(), 0.32, 1e-9);
}

TEST(SimTime, ToStringFormatsSeconds) {
  EXPECT_EQ(SimTime::millis(1500).to_string(), "1.500000000s");
}

}  // namespace
}  // namespace trim::sim
