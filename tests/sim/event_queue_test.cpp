#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace trim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::micros(30), [&] { order.push_back(3); });
  q.push(SimTime::micros(10), [&] { order.push_back(1); });
  q.push(SimTime::micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesDispatchInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventsNeverFire) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(SimTime::micros(1), [&] { ++fired; });
  q.push(SimTime::micros(2), [&] { ++fired; });
  q.cancel(id);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelHeadThenNextTimeSkipsIt) {
  EventQueue q;
  const auto id = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(7), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::micros(7));
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const auto a = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelIsIdempotentAndInvalidIdIsIgnored) {
  EventQueue q;
  const auto id = q.push(SimTime::micros(1), [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(EventId{});  // invalid
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::micros(42), [] {});
  EXPECT_EQ(q.pop().at, SimTime::micros(42));
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Pseudo-random times; dispatch must still be monotone.
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    q.push(SimTime::nanos(static_cast<std::int64_t>(x % 1'000'000)), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto at = q.pop().at;
    EXPECT_GE(at, prev);
    prev = at;
  }
}

}  // namespace
}  // namespace trim::sim
