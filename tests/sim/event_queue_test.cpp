#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace trim::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::micros(30), [&] { order.push_back(3); });
  q.push(SimTime::micros(10), [&] { order.push_back(1); });
  q.push(SimTime::micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesDispatchInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelledEventsNeverFire) {
  EventQueue q;
  int fired = 0;
  const auto id = q.push(SimTime::micros(1), [&] { ++fired; });
  q.push(SimTime::micros(2), [&] { ++fired; });
  q.cancel(id);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelHeadThenNextTimeSkipsIt) {
  EventQueue q;
  const auto id = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(7), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::micros(7));
}

TEST(EventQueue, SizeExcludesCancelled) {
  EventQueue q;
  const auto a = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelIsIdempotentAndInvalidIdIsIgnored) {
  EventQueue q;
  const auto id = q.push(SimTime::micros(1), [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(EventId{});  // invalid
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopReturnsTimestamp) {
  EventQueue q;
  q.push(SimTime::micros(42), [] {});
  EXPECT_EQ(q.pop().at, SimTime::micros(42));
}

// Regression: cancelling an id whose event already fired used to insert a
// tombstone that never drained, permanently skewing size() (the old
// heap_.size() - cancelled_.size() underflowed a size_t). The
// generation-tagged heap makes stale cancels a no-op by construction.
TEST(EventQueue, CancelAfterFireIsNoOpAndSizeStaysExact) {
  EventQueue q;
  const auto fired = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  q.pop().cb();          // `fired` has dispatched
  q.cancel(fired);       // stale: must not affect anything
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  q.cancel(fired);       // still harmless on an empty queue
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

// A stale id must not cancel the new occupant of a recycled slot.
TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot) {
  EventQueue q;
  const auto old_id = q.push(SimTime::micros(1), [] {});
  q.pop();  // releases the slot; `old_id` is now stale
  int fired = 0;
  q.push(SimTime::micros(2), [&] { ++fired; });  // reuses the slot
  q.cancel(old_id);
  ASSERT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, IsPendingTracksLifecycle) {
  EventQueue q;
  EXPECT_FALSE(q.is_pending(EventId{}));
  const auto a = q.push(SimTime::micros(1), [] {});
  const auto b = q.push(SimTime::micros(2), [] {});
  EXPECT_TRUE(q.is_pending(a));
  EXPECT_TRUE(q.is_pending(b));
  q.cancel(b);
  EXPECT_FALSE(q.is_pending(b));
  q.pop();
  EXPECT_FALSE(q.is_pending(a));
}

TEST(EventQueue, CancelInteriorEntryKeepsDispatchOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(SimTime::micros(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 64; i += 3) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 64u - 21u);
  int prev = -1;
  while (!q.empty()) q.pop().cb();
  for (const int i : order) {
    EXPECT_GT(i, prev);
    EXPECT_NE(i % 3, 1);
    prev = i;
  }
}

TEST(EventQueue, RandomizedCancelStressMatchesReferenceModel) {
  EventQueue q;
  std::vector<std::pair<std::int64_t, EventId>> live;  // (time, id)
  std::uint64_t x = 987654321;
  auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  std::multiset<std::int64_t> expected;
  for (int round = 0; round < 20000; ++round) {
    const auto action = rnd() % 3;
    if (action != 0 || live.empty()) {
      const auto at = static_cast<std::int64_t>(rnd() % 1'000'000);
      live.emplace_back(at, q.push(SimTime::nanos(at), [] {}));
      expected.insert(at);
    } else {
      const auto pick = rnd() % live.size();
      q.cancel(live[pick].second);
      expected.erase(expected.find(live[pick].first));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(q.size(), expected.size());
  }
  // Everything left must drain in exactly the reference order.
  for (const auto at : expected) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.pop().at, SimTime::nanos(at));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  // Pseudo-random times; dispatch must still be monotone.
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    q.push(SimTime::nanos(static_cast<std::int64_t>(x % 1'000'000)), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto at = q.pop().at;
    EXPECT_GE(at, prev);
    prev = at;
  }
}

}  // namespace
}  // namespace trim::sim
