#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace trim::sim {
namespace {

// Every contract test runs against both scheduler backends: the 4-ary heap
// and the calendar-queue wheel must be observably interchangeable.
class EventQueueTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueTest,
                         ::testing::Values(SchedulerKind::kHeap,
                                           SchedulerKind::kWheel),
                         [](const auto& info) {
                           return std::string{to_string(info.param)};
                         });

TEST_P(EventQueueTest, PopsInTimeOrder) {
  std::vector<int> order;
  q.push(SimTime::micros(30), [&] { order.push_back(3); });
  q.push(SimTime::micros(10), [&] { order.push_back(1); });
  q.push(SimTime::micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesDispatchInInsertionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().cb();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueTest, CancelledEventsNeverFire) {
  int fired = 0;
  const auto id = q.push(SimTime::micros(1), [&] { ++fired; });
  q.push(SimTime::micros(2), [&] { ++fired; });
  q.cancel(id);
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueTest, CancelHeadThenNextTimeSkipsIt) {
  const auto id = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(7), [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::micros(7));
}

TEST_P(EventQueueTest, SizeExcludesCancelled) {
  const auto a = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueTest, CancelIsIdempotentAndInvalidIdIsIgnored) {
  const auto id = q.push(SimTime::micros(1), [] {});
  q.cancel(id);
  q.cancel(id);
  q.cancel(EventId{});  // invalid
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, ClearDropsEverything) {
  q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST_P(EventQueueTest, ClearThenReuseStartsFresh) {
  q.push(SimTime::micros(9), [] {});
  q.clear();
  std::vector<int> order;
  q.push(SimTime::micros(2), [&] { order.push_back(2); });
  q.push(SimTime::micros(1), [&] { order.push_back(1); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_P(EventQueueTest, PopReturnsTimestamp) {
  q.push(SimTime::micros(42), [] {});
  EXPECT_EQ(q.pop().at, SimTime::micros(42));
}

// Regression: cancelling an id whose event already fired used to insert a
// tombstone that never drained, permanently skewing size() (the old
// heap_.size() - cancelled_.size() underflowed a size_t). Generation-tagged
// slots make stale cancels a no-op by construction in both backends.
TEST_P(EventQueueTest, CancelAfterFireIsNoOpAndSizeStaysExact) {
  const auto fired = q.push(SimTime::micros(1), [] {});
  q.push(SimTime::micros(2), [] {});
  q.pop().cb();          // `fired` has dispatched
  q.cancel(fired);       // stale: must not affect anything
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  q.cancel(fired);       // still harmless on an empty queue
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

// A stale id must not cancel the new occupant of a recycled slot.
TEST_P(EventQueueTest, StaleIdDoesNotCancelRecycledSlot) {
  const auto old_id = q.push(SimTime::micros(1), [] {});
  q.pop();  // releases the slot; `old_id` is now stale
  int fired = 0;
  q.push(SimTime::micros(2), [&] { ++fired; });  // reuses the slot
  q.cancel(old_id);
  ASSERT_EQ(q.size(), 1u);
  q.pop().cb();
  EXPECT_EQ(fired, 1);
}

TEST_P(EventQueueTest, IsPendingTracksLifecycle) {
  EXPECT_FALSE(q.is_pending(EventId{}));
  const auto a = q.push(SimTime::micros(1), [] {});
  const auto b = q.push(SimTime::micros(2), [] {});
  EXPECT_TRUE(q.is_pending(a));
  EXPECT_TRUE(q.is_pending(b));
  q.cancel(b);
  EXPECT_FALSE(q.is_pending(b));
  q.pop();
  EXPECT_FALSE(q.is_pending(a));
}

TEST_P(EventQueueTest, CancelInteriorEntryKeepsDispatchOrder) {
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(q.push(SimTime::micros(i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 64; i += 3) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 64u - 21u);
  int prev = -1;
  while (!q.empty()) q.pop().cb();
  for (const int i : order) {
    EXPECT_GT(i, prev);
    EXPECT_NE(i % 3, 1);
    prev = i;
  }
}

// Schedule-from-inside-a-callback at the current time must dispatch after
// everything already pending at that time but before any later time — the
// self-clocked link drain depends on this.
TEST_P(EventQueueTest, PushAtCurrentTimeFromCallbackRunsInSequence) {
  std::vector<int> order;
  q.push(SimTime::micros(5), [&] {
    order.push_back(0);
    q.push(SimTime::micros(5), [&] { order.push_back(2); });
  });
  q.push(SimTime::micros(5), [&] { order.push_back(1); });
  q.push(SimTime::micros(6), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().cb();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(EventQueueTest, RandomizedCancelStressMatchesReferenceModel) {
  std::vector<std::pair<std::int64_t, EventId>> live;  // (time, id)
  std::uint64_t x = 987654321;
  auto rnd = [&x] {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 33;
  };
  std::multiset<std::int64_t> expected;
  for (int round = 0; round < 20000; ++round) {
    const auto action = rnd() % 3;
    if (action != 0 || live.empty()) {
      const auto at = static_cast<std::int64_t>(rnd() % 1'000'000);
      live.emplace_back(at, q.push(SimTime::nanos(at), [] {}));
      expected.insert(at);
    } else {
      const auto pick = rnd() % live.size();
      q.cancel(live[pick].second);
      expected.erase(expected.find(live[pick].first));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_EQ(q.size(), expected.size());
  }
  // Everything left must drain in exactly the reference order.
  for (const auto at : expected) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.pop().at, SimTime::nanos(at));
  }
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, ManyEventsStressOrdering) {
  // Pseudo-random times; dispatch must still be monotone.
  std::uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    q.push(SimTime::nanos(static_cast<std::int64_t>(x % 1'000'000)), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    const auto at = q.pop().at;
    EXPECT_GE(at, prev);
    prev = at;
  }
}

// Times spread across many wheel levels (nanoseconds up to whole seconds)
// exercise the cascade path; the heap is level-agnostic by construction.
TEST_P(EventQueueTest, WideTimeRangeStillPopsInOrder) {
  std::uint64_t x = 5150;
  std::multiset<std::int64_t> expected;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const auto at = static_cast<std::int64_t>((x >> 33) % 5'000'000'000);
    expected.insert(at);
    q.push(SimTime::nanos(at), [] {});
  }
  for (const auto at : expected) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.pop().at, SimTime::nanos(at));
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueFacade, DefaultKindComesFromEnvironment) {
  // The suite runs with TRIM_SCHEDULER unset or set by the CI matrix; either
  // way the default-constructed facade must agree with the resolver.
  EventQueue q;
  EXPECT_EQ(q.kind(), scheduler_kind_from_env());
}

}  // namespace
}  // namespace trim::sim
