#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace trim::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
    const auto n = rng.uniform_int(-2, 2);
    EXPECT_GE(n, -2);
    EXPECT_LE(n, 2);
  }
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, TimeHelpersProduceTimesInRange) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    const auto t = rng.uniform_time(SimTime::micros(10), SimTime::micros(20));
    EXPECT_GE(t, SimTime::micros(10));
    EXPECT_LE(t, SimTime::micros(20));
    EXPECT_GE(rng.exponential_time(SimTime::millis(1)), SimTime::zero());
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{99};
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(EmpiricalCdf, QuantileHitsAnchorsExactly) {
  EmpiricalCdf cdf{{{1.0, 0.0}, {10.0, 0.5}, {100.0, 1.0}},
                   EmpiricalCdf::Interp::kLogValue};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(EmpiricalCdf, LogInterpolationIsGeometric) {
  EmpiricalCdf cdf{{{1.0, 0.0}, {100.0, 1.0}}, EmpiricalCdf::Interp::kLogValue};
  EXPECT_NEAR(cdf.quantile(0.5), 10.0, 1e-9);
}

TEST(EmpiricalCdf, LinearInterpolationIsArithmetic) {
  EmpiricalCdf cdf{{{0.0, 0.0}, {100.0, 1.0}}, EmpiricalCdf::Interp::kLinear};
  EXPECT_NEAR(cdf.quantile(0.25), 25.0, 1e-9);
}

TEST(EmpiricalCdf, SamplesStayInSupportAndMatchMassAllocation) {
  EmpiricalCdf cdf{{{512.0, 0.0}, {4096.0, 0.2}, {131072.0, 0.9}, {262144.0, 1.0}},
                   EmpiricalCdf::Interp::kLogValue};
  Rng rng{5};
  int leq_4k = 0, gt_128k = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = cdf.sample(rng);
    EXPECT_GE(x, 512.0);
    EXPECT_LE(x, 262144.0);
    if (x <= 4096.0) ++leq_4k;
    if (x > 131072.0) ++gt_128k;
  }
  EXPECT_NEAR(leq_4k / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(gt_128k / static_cast<double>(n), 0.1, 0.02);
}

TEST(EmpiricalCdf, RejectsBadAnchors) {
  using Anchors = std::vector<EmpiricalCdf::Anchor>;
  EXPECT_THROW((EmpiricalCdf{Anchors{{1.0, 1.0}}, EmpiricalCdf::Interp::kLinear}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{Anchors{{1.0, 0.5}, {2.0, 0.4}},
                             EmpiricalCdf::Interp::kLinear}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{Anchors{{1.0, 0.0}, {2.0, 0.9}},
                             EmpiricalCdf::Interp::kLinear}),
               std::invalid_argument);
  EXPECT_THROW((EmpiricalCdf{Anchors{{-1.0, 0.0}, {2.0, 1.0}},
                             EmpiricalCdf::Interp::kLogValue}),
               std::invalid_argument);
}

}  // namespace
}  // namespace trim::sim
