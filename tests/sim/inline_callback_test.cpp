#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_callback.hpp"

namespace trim::sim {
namespace {

TEST(InlineCallback, EmptyByDefault) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, InvokesSmallCapture) {
  int hits = 0;
  InlineCallback cb{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, PacketSizedCaptureStaysInline) {
  // The link pipeline's capture shape: a 56-byte packet plus a pointer.
  struct PacketSized {
    std::array<unsigned char, 56> bytes{};
    void* link = nullptr;
  };
  PacketSized payload;
  payload.bytes[0] = 42;
  unsigned char seen = 0;
  InlineCallback cb{[payload, &seen] { seen = payload.bytes[0]; }};
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  EXPECT_EQ(seen, 42);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeap) {
  std::array<unsigned char, InlineCallback::kInlineBytes + 64> big{};
  big[3] = 7;
  unsigned char seen = 0;
  InlineCallback cb{[big, &seen] { seen = big[3]; }};
  EXPECT_TRUE(cb.heap_allocated());
  cb();
  EXPECT_EQ(seen, 7);
}

TEST(InlineCallback, MoveTransfersOwnershipInlineAndHeap) {
  int hits = 0;
  InlineCallback small{[&hits] { ++hits; }};
  InlineCallback moved{std::move(small)};
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(hits, 1);

  std::array<unsigned char, InlineCallback::kInlineBytes + 1> big{};
  InlineCallback heap{[big, &hits] { hits += static_cast<int>(big.size()) > 0 ? 1 : 0; }};
  InlineCallback heap_moved;
  heap_moved = std::move(heap);
  EXPECT_FALSE(static_cast<bool>(heap));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(heap_moved.heap_allocated());
  heap_moved();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, DestructorRunsCaptureDestructors) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb{[held = std::move(token)] { (void)held; }};
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineCallback, ResetReleasesHeapCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  std::array<unsigned char, InlineCallback::kInlineBytes + 1> big{};
  InlineCallback cb{[held = std::move(token), big] { (void)held, (void)big; }};
  EXPECT_TRUE(cb.heap_allocated());
  EXPECT_FALSE(watch.expired());
  cb.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback victim{[held = std::move(token)] { (void)held; }};
  victim = InlineCallback{[] {}};
  EXPECT_TRUE(watch.expired());
  victim();  // the replacement must still be callable
}

TEST(InlineCallback, WorksAcrossVectorReallocation) {
  std::vector<InlineCallback> cbs;
  int sum = 0;
  for (int i = 0; i < 100; ++i) {
    cbs.emplace_back([&sum, i] { sum += i; });
  }
  for (auto& cb : cbs) cb();
  EXPECT_EQ(sum, 99 * 100 / 2);
}

}  // namespace
}  // namespace trim::sim
