// Property test: the heap and calendar-queue scheduler backends are
// observably identical. Each case drives the same deterministic workload
// through both backends side by side and asserts the dispatch sequences —
// (time, which-event) pairs, not just times — match exactly. This is the
// guarantee the figure reproductions lean on when TRIM_SCHEDULER flips:
// same-time ties, cancellations (pending, fired, and recycled-slot stale),
// mid-callback scheduling, and run_until boundaries all behave the same.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace trim::sim {
namespace {

// Deterministic PCG-style generator (same LCG the engine benches use).
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : x_{seed} {}
  std::uint64_t next() {
    x_ = x_ * 6364136223846793005ull + 1442695040888963407ull;
    return x_ >> 33;
  }

 private:
  std::uint64_t x_;
};

// One scripted operation, applied to both backends in lockstep.
struct Op {
  enum Kind { kPush, kCancel, kPop } kind;
  std::int64_t at = 0;    // kPush: absolute nanoseconds
  std::size_t target = 0;  // kCancel: index into the ids pushed so far
};

// Generate a schedule/cancel/pop script. Times are drawn from a small
// window so same-time collisions are common (the tie-break is the point),
// and cancel targets deliberately include already-fired and already-
// cancelled ids (stale handles must be no-ops on both backends).
std::vector<Op> make_script(std::uint64_t seed, int rounds) {
  Lcg rnd{seed};
  std::vector<Op> ops;
  std::size_t pushed = 0;
  for (int i = 0; i < rounds; ++i) {
    const auto roll = rnd.next() % 10;
    if (roll < 5 || pushed == 0) {
      // Mix of dense near-term times (collisions) and far-out times
      // (higher wheel levels, cascades).
      const bool far = rnd.next() % 8 == 0;
      const auto at = far ? static_cast<std::int64_t>(rnd.next() % 3'000'000'000)
                          : static_cast<std::int64_t>(rnd.next() % 4'096);
      ops.push_back({Op::kPush, at, 0});
      ++pushed;
    } else if (roll < 8) {
      ops.push_back({Op::kCancel, 0, rnd.next() % pushed});
    } else {
      ops.push_back({Op::kPop, 0, 0});
    }
  }
  return ops;
}

// Replay `ops` against a fresh queue of `kind`; events are identified by
// their push ordinal so the trace captures *which* event fired, not just
// when. Returns the dispatch trace plus the surviving (drained) tail.
std::vector<std::pair<std::int64_t, std::size_t>> replay(SchedulerKind kind,
                                                         const std::vector<Op>& ops) {
  EventQueue q{kind};
  std::vector<EventId> ids;
  std::vector<std::pair<std::int64_t, std::size_t>> trace;
  std::size_t next_ordinal = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPush: {
        const std::size_t ordinal = next_ordinal++;
        ids.push_back(q.push(SimTime::nanos(op.at), [&trace, ordinal] {
          trace.back().second = ordinal;
        }));
        break;
      }
      case Op::kCancel:
        q.cancel(ids[op.target]);  // possibly stale: must be a no-op
        break;
      case Op::kPop:
        if (!q.empty()) {
          auto popped = q.pop();
          trace.emplace_back(popped.at.ns(), 0);
          popped.cb();
        }
        break;
    }
  }
  while (!q.empty()) {
    auto popped = q.pop();
    trace.emplace_back(popped.at.ns(), 0);
    popped.cb();
  }
  EXPECT_EQ(q.size(), 0u);
  return trace;
}

TEST(SchedulerEquivalence, RandomScriptsDispatchIdentically) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto ops = make_script(seed * 0x9e3779b97f4a7c15ull, 4000);
    const auto heap_trace = replay(SchedulerKind::kHeap, ops);
    const auto wheel_trace = replay(SchedulerKind::kWheel, ops);
    ASSERT_EQ(heap_trace, wheel_trace) << "seed " << seed;
  }
}

// Same-time ties under interleaved cancellation: all events collapse onto
// a handful of timestamps, so insertion-sequence order is the only thing
// distinguishing a correct trace from a wrong one.
TEST(SchedulerEquivalence, DenseTieStormDispatchesIdentically) {
  Lcg rnd{424242};
  std::vector<Op> ops;
  std::size_t pushed = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto roll = rnd.next() % 4;
    if (roll != 0 || pushed == 0) {
      ops.push_back({Op::kPush, static_cast<std::int64_t>(rnd.next() % 4), 0});
      ++pushed;
    } else {
      ops.push_back({Op::kCancel, 0, rnd.next() % pushed});
    }
  }
  EXPECT_EQ(replay(SchedulerKind::kHeap, ops),
            replay(SchedulerKind::kWheel, ops));
}

// Full-simulator property: two worlds, one per backend, run the same
// self-scheduling workload (events reschedule themselves, cancel timers,
// and schedule at the current time) and must tick through identical
// (now, ordinal) histories — including across run_until boundaries, where
// events exactly at the boundary run and later ones hold.
class TickWorld {
 public:
  explicit TickWorld(SchedulerKind kind) : sim_{kind} {}

  void start() {
    // Three interleaved periodic chains with colliding periods plus an
    // RTO-style timer that is forever cancelled and re-armed.
    arm_chain(0, SimTime::micros(3));
    arm_chain(1, SimTime::micros(5));
    arm_chain(2, SimTime::micros(15));
    rearm_rto();
  }

  std::uint64_t run_until(SimTime until) { return sim_.run_until(until); }
  const std::vector<std::pair<std::int64_t, int>>& history() const {
    return history_;
  }
  SimTime now() const { return sim_.now(); }

 private:
  void arm_chain(int id, SimTime period) {
    sim_.schedule(period, [this, id, period] {
      history_.emplace_back(sim_.now().ns(), id);
      // Every chain tick re-arms the shared RTO: the cancel/re-push churn
      // is exactly the pattern fig08-class runs hammer the scheduler with.
      rearm_rto();
      if (id == 0 && history_.size() % 7 == 0) {
        // Occasionally spawn a same-time event: must run this tick, after
        // everything already queued for `now`.
        sim_.schedule(SimTime::zero(),
                      [this] { history_.emplace_back(sim_.now().ns(), 100); });
      }
      arm_chain(id, period);
    });
  }

  void rearm_rto() {
    sim_.cancel(rto_);
    rto_ = sim_.schedule(SimTime::millis(10), [this] {
      history_.emplace_back(sim_.now().ns(), 999);  // RTO actually fired
    });
  }

  Simulator sim_;
  EventId rto_;
  std::vector<std::pair<std::int64_t, int>> history_;
};

TEST(SchedulerEquivalence, SimulatorWorldsTickIdentically) {
  TickWorld heap_world{SchedulerKind::kHeap};
  TickWorld wheel_world{SchedulerKind::kWheel};
  heap_world.start();
  wheel_world.start();
  // Advance both worlds in uneven slices; boundary events (run_until is
  // inclusive) must land in the same slice on both.
  const SimTime cuts[] = {SimTime::micros(15), SimTime::micros(16),
                          SimTime::micros(300), SimTime::millis(2),
                          SimTime::millis(2), SimTime::millis(25)};
  for (const auto cut : cuts) {
    const auto heap_n = heap_world.run_until(cut);
    const auto wheel_n = wheel_world.run_until(cut);
    EXPECT_EQ(heap_n, wheel_n);
    EXPECT_EQ(heap_world.now(), wheel_world.now());
    ASSERT_EQ(heap_world.history(), wheel_world.history());
  }
  EXPECT_FALSE(heap_world.history().empty());
}

}  // namespace
}  // namespace trim::sim
