#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace trim::sim {
namespace {

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen;
  sim.schedule(SimTime::millis(5), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::millis(5));
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(Simulator, ScheduleIsRelativeToNow) {
  Simulator sim;
  SimTime inner;
  sim.schedule(SimTime::millis(1), [&] {
    sim.schedule(SimTime::millis(2), [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, SimTime::millis(3));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::millis(10), [&] { ++fired; });
  sim.schedule_at(SimTime::millis(20), [&] { ++fired; });
  sim.run_until(SimTime::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(10));
  sim.run_until(SimTime::millis(30));
  EXPECT_EQ(fired, 2);
  // Clock advances to the until-time even when the queue drains first.
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  SimTime seen = SimTime::max();
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule(SimTime::zero() - SimTime::millis(1), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::millis(5));
}

TEST(Simulator, ScheduleAtInThePastRunsNow) {
  Simulator sim;
  SimTime seen = SimTime::max();
  sim.schedule_at(SimTime::millis(5), [&] {
    sim.schedule_at(SimTime::millis(1), [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, SimTime::millis(5));
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule(SimTime::millis(1), [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(SimTime::millis(i), [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

TEST(Simulator, ResetClearsPendingAndClock) {
  Simulator sim;
  sim.schedule(SimTime::millis(1), [] {});
  sim.run_until(SimTime::millis(2));
  sim.schedule(SimTime::millis(5), [] {});
  sim.reset();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.now(), SimTime::zero());
}

TEST(Simulator, EventChainTerminates) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) sim.schedule(SimTime::micros(1), tick);
  };
  sim.schedule(SimTime::micros(1), tick);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), SimTime::micros(100));
}

}  // namespace
}  // namespace trim::sim
