// Unit tests for the sharded parallel engine: serial passthrough, barrier
// windows, mailbox flush order, clock clamping, lookahead validation, and
// exception containment. Cross-layer equivalence (a real topology split
// across shards vs. the serial engine) lives in exp/shard_equivalence_test.
#include "sim/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/config_error.hpp"
#include "sim/time.hpp"

namespace trim::sim {
namespace {

TEST(ShardedEngine, SingleShardRunsSerially) {
  ShardedEngine engine{1};
  std::vector<int> order;
  engine.control().schedule_at(SimTime::micros(20), [&] { order.push_back(2); });
  engine.control().schedule_at(SimTime::micros(10), [&] { order.push_back(1); });

  EXPECT_FALSE(engine.sharded());
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(engine.windows_run(), 0u);
  EXPECT_EQ(engine.events_dispatched(), 2u);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(ShardedEngine, UnpartitionedMultiShardTakesSerialPath) {
  ShardedEngine engine{4};
  int fired = 0;
  for (int i = 0; i < 4; ++i) {
    engine.shard(i).schedule_at(SimTime::micros(5 + i), [&] { ++fired; });
  }

  // No cut links registered: draining shard-by-shard in index order is
  // exact, so no barrier windows run.
  EXPECT_FALSE(engine.sharded());
  EXPECT_EQ(engine.run_until(SimTime::millis(1)), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(engine.windows_run(), 0u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.shard(i).now(), SimTime::millis(1)) << "shard " << i;
  }
}

TEST(ShardedEngine, CrossShardPingPongObeysDelays) {
  ShardedEngine engine{2};
  engine.note_cut_link(SimTime::micros(10));
  ASSERT_TRUE(engine.sharded());
  ASSERT_EQ(engine.lookahead(), SimTime::micros(10));

  // A hop bounces between the shards through the mailboxes: each leg adds
  // the cut-link delay, exactly like a partitioned Link's delivery leg.
  struct Hop {
    ShardedEngine* engine;
    std::vector<SimTime>* arrivals;
    int remaining;

    void fire(int on_shard) const {
      arrivals->push_back(engine->shard(on_shard).now());
      if (remaining == 0) return;
      Hop next{engine, arrivals, remaining - 1};
      const int to = 1 - on_shard;
      engine->post(on_shard, to,
                   engine->shard(on_shard).now() + SimTime::micros(10),
                   [next, to] { next.fire(to); });
    }
  };
  std::vector<SimTime> arrivals;
  Hop first{&engine, &arrivals, 5};
  engine.shard(0).schedule_at(SimTime::micros(3), [first] { first.fire(0); });

  engine.run();

  ASSERT_EQ(arrivals.size(), 6u);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], SimTime::micros(3) + SimTime::micros(10 * static_cast<int>(i)));
  }
  EXPECT_GE(engine.windows_run(), 5u);
}

TEST(ShardedEngine, MailboxFlushOrderIsSourceMajorFifo) {
  ShardedEngine engine{3};
  engine.note_cut_link(SimTime::micros(50));

  // Shards 1 and 2 each post two entries to shard 0, all due at the same
  // instant. The flush contract is (destination, source, FIFO): shard 1's
  // entries run before shard 2's, each pair in posting order.
  std::vector<int> order;
  const SimTime due = SimTime::micros(100);
  auto poster = [&engine, &order, due](int src, int tag) {
    engine.post(src, 0, due, [&order, tag] { order.push_back(tag); });
    engine.post(src, 0, due, [&order, tag] { order.push_back(tag + 1); });
  };
  engine.shard(2).schedule_at(SimTime::micros(1), [&] { poster(2, 30); });
  engine.shard(1).schedule_at(SimTime::micros(1), [&] { poster(1, 10); });

  engine.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 30, 31}));
}

TEST(ShardedEngine, RunUntilClampsEveryShardClock) {
  ShardedEngine engine{2};
  engine.note_cut_link(SimTime::micros(10));
  int fired = 0;
  engine.shard(0).schedule_at(SimTime::micros(40), [&] { ++fired; });
  engine.shard(1).schedule_at(SimTime::millis(5), [&] { ++fired; });

  engine.run_until(SimTime::millis(1));

  EXPECT_EQ(fired, 1);  // the 5 ms event is past the horizon
  EXPECT_EQ(engine.shard(0).now(), SimTime::millis(1));
  EXPECT_EQ(engine.shard(1).now(), SimTime::millis(1));
  EXPECT_EQ(engine.pending_events(), 1u);

  // Resuming picks the remaining event up (run_until is inclusive).
  engine.run_until(SimTime::millis(5));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(ShardedEngine, WindowedRunIsDeterministic) {
  auto run_once = [] {
    ShardedEngine engine{4};
    engine.note_cut_link(SimTime::micros(20));
    // One arrival log per destination shard: each is written only by that
    // shard's worker thread, so the logs stay race-free while the mesh
    // below runs all four shards concurrently.
    std::vector<std::vector<int>> arrived(4);
    // A deterministic little mesh: every shard posts to its neighbor on a
    // timer, all riding the same lookahead.
    for (int s = 0; s < 4; ++s) {
      for (int k = 1; k <= 8; ++k) {
        engine.shard(s).schedule_at(SimTime::micros(3 * k), [&engine, &arrived, s, k] {
          const int to = (s + 1) % 4;
          engine.post(s, to,
                      engine.shard(s).now() + SimTime::micros(20),
                      [&arrived, to, s, k] { arrived[to].push_back(s * 100 + k); });
        });
      }
    }
    engine.run();
    std::vector<int> order;
    for (const auto& log : arrived) order.insert(order.end(), log.begin(), log.end());
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), 32u);
  EXPECT_EQ(a, b);
}

TEST(ShardedEngine, ZeroDelayCutLinkRejected) {
  ShardedEngine engine{2};
  EXPECT_THROW(engine.note_cut_link(SimTime::zero()), ConfigError);
}

TEST(ShardedEngine, BadShardCountRejected) {
  EXPECT_THROW(ShardedEngine{0}, ConfigError);
  EXPECT_THROW(ShardedEngine{-3}, ConfigError);
}

TEST(ShardedEngine, WorkerExceptionPropagates) {
  ShardedEngine engine{2};
  engine.note_cut_link(SimTime::micros(10));
  std::atomic<int> survivors{0};
  engine.shard(0).schedule_at(SimTime::micros(5), [&] { ++survivors; });
  engine.shard(1).schedule_at(SimTime::micros(5), [] {
    throw std::runtime_error{"shard 1 blew up"};
  });

  // The throw must propagate to the caller without deadlocking the
  // barrier. Whether shard 0 got its event in first depends on which
  // worker won the race against the fail-fast guard, so the survivor
  // count is 0 or 1 — the hard guarantee is termination + propagation.
  EXPECT_THROW(engine.run_until(SimTime::millis(1)), std::runtime_error);
  EXPECT_LE(survivors.load(), 1);
}

TEST(ShardedEngine, ShardsFromEnvIsClamped) {
  const int n = ShardedEngine::shards_from_env();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 256);
}

// ---- matrix sync protocol ----

TEST(ShardedEngine, SyncModeKnobParsesAndDefaults) {
  EXPECT_STREQ(to_string(SyncMode::kGlobal), "global");
  EXPECT_STREQ(to_string(SyncMode::kMatrix), "matrix");
  ShardedEngine dflt{2};
  EXPECT_EQ(dflt.sync_mode(), sync_mode_from_env());
  ShardedEngine pinned{2, scheduler_kind_from_env(), SyncMode::kGlobal};
  EXPECT_EQ(pinned.sync_mode(), SyncMode::kGlobal);
}

TEST(ShardedEngine, BadCutLinkPairsRejected) {
  ShardedEngine engine{2};
  EXPECT_THROW(engine.note_cut_link(0, 1, SimTime::zero()), ConfigError);
  EXPECT_THROW(engine.note_cut_link(0, 0, SimTime::micros(10)), ConfigError);
  EXPECT_THROW(engine.note_cut_link(0, 2, SimTime::micros(10)), ConfigError);
  EXPECT_THROW(engine.note_cut_link(-1, 1, SimTime::micros(10)), ConfigError);
}

TEST(ShardedEngine, LookaheadMatrixClosesOverRelays) {
  ShardedEngine engine{3};
  engine.note_cut_link(0, 1, SimTime::micros(10));
  engine.note_cut_link(1, 0, SimTime::micros(10));
  engine.note_cut_link(1, 2, SimTime::micros(15));

  // Direct cuts.
  EXPECT_EQ(engine.lookahead_between(0, 1), SimTime::micros(10));
  EXPECT_EQ(engine.lookahead_between(1, 0), SimTime::micros(10));
  EXPECT_EQ(engine.lookahead_between(1, 2), SimTime::micros(15));
  // Multi-hop closure: 0 reaches 2 only through 1.
  EXPECT_EQ(engine.lookahead_between(0, 2), SimTime::micros(25));
  // Nothing flows out of shard 2, so no shard ever waits on it.
  EXPECT_EQ(engine.lookahead_between(2, 0), SimTime::max());
  EXPECT_EQ(engine.lookahead_between(2, 1), SimTime::max());
  // The diagonal is the min *cycle* through other shards (not zero): it
  // bounds a shard's own echoes relayed while the neighbors sit idle.
  EXPECT_EQ(engine.lookahead_between(0, 0), SimTime::micros(20));
  EXPECT_EQ(engine.lookahead_between(1, 1), SimTime::micros(20));
  EXPECT_EQ(engine.lookahead_between(2, 2), SimTime::max());
  // The global lookahead keeps its min-over-all-cuts meaning.
  EXPECT_EQ(engine.lookahead(), SimTime::micros(10));
}

TEST(ShardedEngine, MatrixRelayThroughIdleShardPreservesCausality) {
  // The case that makes the closure load-bearing: shard 0's pending event
  // will reach shard 2 only via shard 1, which is idle at planning time.
  // Without the closed L[0][2] bound shard 2 would run past the relayed
  // arrival and dispatch it behind its own clock.
  ShardedEngine engine{3, scheduler_kind_from_env(), SyncMode::kMatrix};
  engine.note_cut_link(0, 1, SimTime::micros(10));
  engine.note_cut_link(1, 0, SimTime::micros(10));
  engine.note_cut_link(1, 2, SimTime::micros(15));

  std::vector<SimTime> shard2_log;  // written only by shard 2's worker
  engine.shard(2).schedule_at(SimTime::micros(5),
                              [&] { shard2_log.push_back(engine.shard(2).now()); });
  engine.shard(2).schedule_at(SimTime::micros(30),
                              [&] { shard2_log.push_back(engine.shard(2).now()); });
  engine.shard(0).schedule_at(SimTime::micros(1), [&engine, &shard2_log] {
    engine.post(0, 1, engine.shard(0).now() + SimTime::micros(10),
                [&engine, &shard2_log] {
                  engine.post(1, 2, engine.shard(1).now() + SimTime::micros(15),
                              [&engine, &shard2_log] {
                                shard2_log.push_back(engine.shard(2).now());
                              });
                });
  });

  engine.run();

  // 5 us local, 26 us relayed arrival (1 + 10 + 15), 30 us local — in
  // that order, each dispatched exactly at its due time.
  ASSERT_EQ(shard2_log.size(), 3u);
  EXPECT_EQ(shard2_log[0], SimTime::micros(5));
  EXPECT_EQ(shard2_log[1], SimTime::micros(26));
  EXPECT_EQ(shard2_log[2], SimTime::micros(30));
}

TEST(ShardedEngine, MatrixMatchesGlobalOnDistinctTimestamps) {
  // The WindowedRunIsDeterministic mesh has no same-timestamp collisions
  // on any one shard, so both sync protocols must produce *identical*
  // arrival logs — the unit-level version of the shard_equivalence
  // FlowSig oracle.
  auto run_once = [](SyncMode mode) {
    ShardedEngine engine{4, scheduler_kind_from_env(), mode};
    for (int s = 0; s < 4; ++s) {
      engine.note_cut_link(s, (s + 1) % 4, SimTime::micros(20));
    }
    std::vector<std::vector<int>> arrived(4);
    for (int s = 0; s < 4; ++s) {
      for (int k = 1; k <= 8; ++k) {
        engine.shard(s).schedule_at(SimTime::micros(3 * k), [&engine, &arrived, s, k] {
          const int to = (s + 1) % 4;
          engine.post(s, to,
                      engine.shard(s).now() + SimTime::micros(20),
                      [&arrived, to, s, k] { arrived[to].push_back(s * 100 + k); });
        });
      }
    }
    engine.run();
    std::vector<int> order;
    for (const auto& log : arrived) order.insert(order.end(), log.begin(), log.end());
    return order;
  };
  const auto matrix_a = run_once(SyncMode::kMatrix);
  const auto matrix_b = run_once(SyncMode::kMatrix);
  const auto global = run_once(SyncMode::kGlobal);
  ASSERT_EQ(matrix_a.size(), 32u);
  EXPECT_EQ(matrix_a, matrix_b);
  EXPECT_EQ(matrix_a, global);
}

TEST(ShardedEngine, IdleShardSkipsWindowsAndNeedsFewerOfThem) {
  // Shard 0 streams local events while shard 1 never has work. The matrix
  // protocol sees no path back into shard 0 (one-directional cut), lets
  // it run to the horizon in a single window, and fast-paths shard 1
  // through it; the global protocol paces the whole fleet at the 10 us
  // cut lookahead.
  ShardedEngine matrix{2, scheduler_kind_from_env(), SyncMode::kMatrix};
  matrix.note_cut_link(0, 1, SimTime::micros(10));
  int fired_m = 0;
  for (int k = 1; k <= 10; ++k) {
    matrix.shard(0).schedule_at(SimTime::micros(10 * k), [&fired_m] { ++fired_m; });
  }
  matrix.run_until(SimTime::micros(200));

  ShardedEngine global{2, scheduler_kind_from_env(), SyncMode::kGlobal};
  global.note_cut_link(0, 1, SimTime::micros(10));
  int fired_g = 0;
  for (int k = 1; k <= 10; ++k) {
    global.shard(0).schedule_at(SimTime::micros(10 * k), [&fired_g] { ++fired_g; });
  }
  global.run_until(SimTime::micros(200));

  EXPECT_EQ(fired_m, 10);
  EXPECT_EQ(fired_g, 10);
  EXPECT_EQ(matrix.windows_run(), 1u);
  EXPECT_EQ(matrix.shard_stats(1).windows_skipped, 1u);
  EXPECT_EQ(matrix.shard_stats(1).window_events, 0u);
  EXPECT_GT(global.windows_run(), matrix.windows_run());
  // Clock clamp semantics hold for the skipped shard too.
  EXPECT_EQ(matrix.shard(1).now(), SimTime::micros(200));
}

TEST(ShardedEngine, EagerInboxStressAllPairs) {
  // TSan smoke for the eager-delivery inbox: every shard posts to every
  // other shard from inside its window, across many windows, so source
  // pushes and destination drains continuously hit the double-buffered
  // mailboxes from different threads.
  ShardedEngine engine{4, scheduler_kind_from_env(), SyncMode::kMatrix};
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s != d) engine.note_cut_link(s, d, SimTime::micros(10));
    }
  }
  std::vector<std::uint64_t> arrivals(4, 0);  // written by the owner worker
  for (int s = 0; s < 4; ++s) {
    for (int k = 1; k <= 50; ++k) {
      engine.shard(s).schedule_at(SimTime::micros(5 * k), [&engine, &arrivals, s] {
        for (int d = 0; d < 4; ++d) {
          if (d == s) continue;
          engine.post(s, d, engine.shard(s).now() + SimTime::micros(10),
                      [&arrivals, d] { ++arrivals[d]; });
        }
      });
    }
  }
  engine.run();
  std::uint64_t total = 0;
  for (const auto a : arrivals) total += a;
  EXPECT_EQ(total, 4u * 50u * 3u);
  EXPECT_EQ(engine.posts_flushed(), 4u * 50u * 3u);
  EXPECT_GT(engine.windows_run(), 0u);
  EXPECT_EQ(engine.pending_events(), 0u);
}

}  // namespace
}  // namespace trim::sim
