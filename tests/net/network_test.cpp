#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/routing.hpp"

namespace trim::net {
namespace {

// Minimal agent that counts arrivals.
class CountingAgent : public Agent {
 public:
  void on_packet(const Packet&) override { ++count; }
  int count = 0;
};

LinkSpec gig_link() {
  return LinkSpec{kGbps, sim::SimTime::micros(10), QueueConfig{}};
}

TEST(Network, HostToHostThroughSwitch) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, gig_link());
  net.connect(*b, *sw, gig_link());
  net.build_routes();

  CountingAgent agent;
  const auto flow = net.new_flow_id();
  b->register_agent(flow, &agent);

  Packet p;
  p.dst = b->id();
  p.flow = flow;
  p.payload_bytes = 100;
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(agent.count, 1);
  EXPECT_EQ(sw->forwarded_packets(), 1u);
}

TEST(Network, MultiHopLinearChain) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* s1 = net.add_switch("s1");
  auto* s2 = net.add_switch("s2");
  auto* s3 = net.add_switch("s3");
  auto* b = net.add_host("b");
  net.connect(*a, *s1, gig_link());
  net.connect(*s1, *s2, gig_link());
  net.connect(*s2, *s3, gig_link());
  net.connect(*s3, *b, gig_link());
  net.build_routes();

  CountingAgent agent;
  const auto flow = net.new_flow_id();
  b->register_agent(flow, &agent);
  Packet p;
  p.dst = b->id();
  p.flow = flow;
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(agent.count, 1);
  // Propagation: 4 links x 10 us + 4 serializations of a 40 B ACK-sized
  // packet (0.32 us each).
  EXPECT_GT(sim.now(), sim::SimTime::micros(40));
}

TEST(Network, EcmpSpreadsFlowsAcrossEqualPaths) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* in = net.add_switch("in");
  auto* out = net.add_switch("out");
  auto* mid1 = net.add_switch("mid1");
  auto* mid2 = net.add_switch("mid2");
  net.connect(*a, *in, gig_link());
  net.connect(*in, *mid1, gig_link());
  net.connect(*in, *mid2, gig_link());
  net.connect(*mid1, *out, gig_link());
  net.connect(*mid2, *out, gig_link());
  net.connect(*out, *b, gig_link());
  net.build_routes();

  CountingAgent agent_b;
  // Many flows: both middle switches should see traffic.
  for (FlowId f = 1; f <= 64; ++f) {
    b->register_agent(f, &agent_b);
    Packet p;
    p.dst = b->id();
    p.flow = f;
    a->send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(agent_b.count, 64);
  EXPECT_GT(mid1->forwarded_packets(), 10u);
  EXPECT_GT(mid2->forwarded_packets(), 10u);
  // A given flow always takes the same path (per-flow consistency).
  const auto& table = in->routes();
  EXPECT_EQ(table.select_port(b->id(), 7), table.select_port(b->id(), 7));
}

TEST(Network, UnroutablePacketIsCountedNotCrashed) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, gig_link());
  net.build_routes();
  Packet p;
  p.dst = 999;  // no such node
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(sw->unroutable_packets(), 1u);
}

TEST(Network, HostWithoutAgentCountsUnroutable) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  auto* sw = net.add_switch("sw");
  net.connect(*a, *sw, gig_link());
  net.connect(*b, *sw, gig_link());
  net.build_routes();
  Packet p;
  p.dst = b->id();
  p.flow = 42;  // nobody registered
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(b->unroutable_packets(), 1u);
}

TEST(Network, DuplicateAgentRegistrationThrows) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  CountingAgent x, y;
  a->register_agent(1, &x);
  EXPECT_THROW(a->register_agent(1, &y), std::logic_error);
  a->unregister_agent(1);
  a->register_agent(1, &y);  // fine after unregister
}

TEST(Network, FlowIdsAreUnique) {
  sim::Simulator sim;
  Network net{&sim};
  const auto a = net.new_flow_id();
  const auto b = net.new_flow_id();
  EXPECT_NE(a, b);
}

TEST(Network, PacketUidsAreUniquePerHost) {
  sim::Simulator sim;
  Network net{&sim};
  auto* a = net.add_host("a");
  auto* b = net.add_host("b");
  net.connect(*a, *b, gig_link());
  net.build_routes();
  CountingAgent agent;
  b->register_agent(1, &agent);
  Packet p1, p2;
  p1.dst = p2.dst = b->id();
  p1.flow = p2.flow = 1;
  a->send(std::move(p1));
  a->send(std::move(p2));
  sim.run();
  EXPECT_EQ(agent.count, 2);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  // Consecutive inputs should not map to consecutive outputs.
  EXPECT_GT(std::max(mix64(1), mix64(2)) - std::min(mix64(1), mix64(2)), 1000ull);
}

TEST(RoutingTable, ThrowsWithoutRoute) {
  RoutingTable table;
  table.resize(4);
  EXPECT_FALSE(table.has_route(2));
  EXPECT_THROW(table.ports_for(2), std::out_of_range);
  table.add_route(2, 0);
  EXPECT_TRUE(table.has_route(2));
  EXPECT_EQ(table.select_port(2, 1234), 0u);
}

}  // namespace
}  // namespace trim::net
