#include <gtest/gtest.h>

#include "net/red_queue.hpp"
#include "sim/simulator.hpp"

namespace trim::net {
namespace {

Packet pkt(EcnCodepoint ecn = EcnCodepoint::kNotEct) {
  Packet p;
  p.payload_bytes = 1460;
  p.ecn = ecn;
  return p;
}

TEST(RedQueue, NoEarlyDropsBelowMinThreshold) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.min_th = 20;
  RedQueue q{cfg, &sim};
  // Keep instantaneous occupancy low: enqueue/dequeue pairs.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.enqueue(pkt()));
    q.dequeue();
  }
  EXPECT_EQ(q.early_drops(), 0u);
  EXPECT_LT(q.avg_queue(), 20.0);
}

TEST(RedQueue, EarlyDropsBetweenThresholds) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.min_th = 5;
  cfg.max_th = 15;
  cfg.max_p = 0.5;
  cfg.weight = 0.5;  // fast EWMA so the test converges quickly
  RedQueue q{cfg, &sim};
  // Hold occupancy around 10: drops should appear but not be total.
  int accepted = 0, offered = 0;
  for (int i = 0; i < 10; ++i) q.enqueue(pkt());
  for (int i = 0; i < 500; ++i) {
    q.dequeue();
    ++offered;
    if (q.enqueue(pkt())) ++accepted;
  }
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_GT(accepted, offered / 2);  // probabilistic, not a brick wall
}

TEST(RedQueue, AboveMaxThresholdDropsEverything) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.min_th = 2;
  cfg.max_th = 5;
  cfg.weight = 1.0;  // avg == instantaneous
  cfg.capacity_packets = 100;
  RedQueue q{cfg, &sim};
  for (int i = 0; i < 20; ++i) q.enqueue(pkt());
  // avg >= max_th after the first few: all subsequent arrivals dropped.
  EXPECT_LE(q.len_packets(), 6u);
  EXPECT_GT(q.early_drops(), 10u);
}

TEST(RedQueue, HardCapacityStillEnforced) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.capacity_packets = 10;
  cfg.min_th = 50;  // RED never fires; only the droptail backstop
  cfg.max_th = 60;
  RedQueue q{cfg, &sim};
  for (int i = 0; i < 20; ++i) q.enqueue(pkt());
  EXPECT_EQ(q.len_packets(), 10u);
  EXPECT_EQ(q.forced_drops(), 10u);
}

TEST(RedQueue, EcnModeMarksInsteadOfDropping) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.min_th = 2;
  cfg.max_th = 5;
  cfg.weight = 1.0;
  cfg.mark_instead_of_drop = true;
  RedQueue q{cfg, &sim};
  for (int i = 0; i < 20; ++i) q.enqueue(pkt(EcnCodepoint::kEct));
  EXPECT_EQ(q.early_drops(), 0u);
  EXPECT_GT(q.stats().marked_ce, 0u);
  int marked = 0;
  while (auto p = q.dequeue()) {
    if (p->ecn == EcnCodepoint::kCe) ++marked;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(marked), q.stats().marked_ce);
}

TEST(RedQueue, EcnModeDropsNonEctPackets) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.min_th = 2;
  cfg.max_th = 5;
  cfg.weight = 1.0;
  cfg.mark_instead_of_drop = true;
  RedQueue q{cfg, &sim};
  for (int i = 0; i < 20; ++i) q.enqueue(pkt(EcnCodepoint::kNotEct));
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_EQ(q.stats().marked_ce, 0u);
}

TEST(RedQueue, IdleCorrectionDecaysAverage) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.weight = 0.5;
  RedQueue q{cfg, &sim};
  for (int i = 0; i < 30; ++i) q.enqueue(pkt());
  while (q.dequeue().has_value()) {
  }
  const double avg_busy = q.avg_queue();
  ASSERT_GT(avg_busy, 1.0);
  // A long idle period then a fresh arrival: the average must have decayed.
  sim.schedule(sim::SimTime::millis(10), [&] { q.enqueue(pkt()); });
  sim.run();
  EXPECT_LT(q.avg_queue(), avg_busy / 2.0);
}

TEST(RedQueue, RejectsInvalidParameters) {
  sim::Simulator sim;
  RedConfig bad;
  bad.min_th = 60;
  bad.max_th = 20;
  EXPECT_THROW(RedQueue(bad, &sim), std::invalid_argument);
  RedConfig bad_p;
  bad_p.max_p = 0.0;
  EXPECT_THROW(RedQueue(bad_p, &sim), std::invalid_argument);
  EXPECT_THROW(RedQueue(RedConfig{}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace trim::net
