#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "net/trace_tap.hpp"
#include "stats/csv.hpp"
#include "../tcp/tcp_test_util.hpp"
#include "tcp/reno.hpp"
#include "tcp/tcp_receiver.hpp"

namespace trim {
namespace {

// ---------- TraceTap ----------

TEST(TraceTap, RecordsEnqueueAndDelivery) {
  test::HostPair net;
  net::TraceTap tap;
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  tcp::RenoSender sender{&net.a, net.b.id(), 1, tcp::TcpConfig{}};
  sender.write(5 * 1460);
  net.sim.run();
  // 5 data packets: each enqueued once and delivered once on a->b.
  EXPECT_EQ(tap.delivered_count(), 5u);
  EXPECT_EQ(tap.dropped_count(), 0u);
  EXPECT_EQ(tap.entries().size(), 10u);
  // Events are time-ordered.
  for (std::size_t i = 1; i < tap.entries().size(); ++i) {
    EXPECT_GE(tap.entries()[i].at, tap.entries()[i - 1].at);
  }
}

TEST(TraceTap, RecordsDrops) {
  test::HostPair net{1'000'000'000, sim::SimTime::micros(50),
                     net::QueueConfig::droptail_packets(2)};
  net::TraceTap tap;
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  tcp::TcpConfig cfg;
  cfg.initial_cwnd = 20.0;  // burst straight into the 2-packet queue
  cfg.min_rto = sim::SimTime::millis(5);
  tcp::RenoSender sender{&net.a, net.b.id(), 1, cfg};
  sender.write(20 * 1460);
  net.sim.run();
  EXPECT_GT(tap.dropped_count(), 0u);
  EXPECT_EQ(tap.dropped_count(), net.data_queue->stats().dropped);
}

TEST(TraceTap, FlowFilterAndRender) {
  test::HostPair net;
  net::TraceTap tap;
  tap.set_flow_filter(2);
  tap.attach(*net.ab);
  tcp::TcpReceiver recv1{&net.b, 1, net.a.id()};
  tcp::TcpReceiver recv2{&net.b, 2, net.a.id()};
  tcp::RenoSender s1{&net.a, net.b.id(), 1, tcp::TcpConfig{}};
  tcp::RenoSender s2{&net.a, net.b.id(), 2, tcp::TcpConfig{}};
  s1.write(3 * 1460);
  s2.write(3 * 1460);
  net.sim.run();
  for (const auto& e : tap.entries()) EXPECT_EQ(e.packet.flow, 2u);
  const auto text = tap.render(4);
  EXPECT_NE(text.find("ENQ"), std::string::npos);
  EXPECT_NE(text.find("more)"), std::string::npos);  // truncation marker
}

TEST(TraceTap, MaxEntriesBoundsMemory) {
  test::HostPair net;
  net::TraceTap tap;
  tap.set_max_entries(50);
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  tcp::RenoSender sender{&net.a, net.b.id(), 1, tcp::TcpConfig{}};
  sender.write(500 * 1460);
  net.sim.run();
  EXPECT_LE(tap.entries().size(), 50u);
}

// ---------- CSV ----------

TEST(Csv, WriterProducesParseableFile) {
  const std::string path = ::testing::TempDir() + "/trim_csv_test.csv";
  {
    stats::CsvWriter csv{path};
    csv.header({"a", "b"});
    csv.row(std::vector<double>{1.5, 2.0});
    csv.row(std::vector<std::string>{"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, WriterThrowsOnBadPath) {
  EXPECT_THROW(stats::CsvWriter{"/nonexistent_dir_zz/x.csv"}, std::runtime_error);
}

TEST(Csv, MaybeWriteIsNoOpWithoutEnv) {
  ::unsetenv("REPRO_CSV_DIR");
  stats::TimeSeries ts;
  ts.record(sim::SimTime::millis(1), 2.0);
  EXPECT_EQ(stats::maybe_write_series("nope", ts, "v"), "");
}

TEST(Csv, MaybeWriteSeriesAndCdfWithEnv) {
  const std::string dir = ::testing::TempDir();
  ::setenv("REPRO_CSV_DIR", dir.c_str(), 1);
  stats::TimeSeries ts;
  ts.record(sim::SimTime::millis(1), 2.0);
  ts.record(sim::SimTime::millis(2), 3.0);
  const auto series_path = stats::maybe_write_series("series_test", ts, "pkts");
  EXPECT_FALSE(series_path.empty());

  stats::Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  const auto cdf_path = stats::maybe_write_cdf("cdf_test", cdf, "ms");
  EXPECT_FALSE(cdf_path.empty());

  std::ifstream in{cdf_path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "ms,cum_prob");
  std::getline(in, line);
  EXPECT_EQ(line, "1,0.5");

  ::unsetenv("REPRO_CSV_DIR");
  std::remove(series_path.c_str());
  std::remove(cdf_path.c_str());
}

}  // namespace
}  // namespace trim
