// TraceTap's JSONL export shares the flight-recorder event schema, so a
// link trace and a recorder dump interleave cleanly when sorted by "t".
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/trace_tap.hpp"
#include "obs/events.hpp"
#include "../tcp/tcp_test_util.hpp"
#include "tcp/reno.hpp"
#include "tcp/tcp_receiver.hpp"

namespace trim {
namespace {

std::vector<std::string> lines_of(const std::string& blob) {
  std::vector<std::string> out;
  std::istringstream in{blob};
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(TraceTapJsonl, UsesTheSharedEventSchema) {
  test::HostPair net;
  net::TraceTap tap;
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 7, net.a.id()};
  tcp::RenoSender sender{&net.a, net.b.id(), 7, tcp::TcpConfig{}};
  sender.write(3 * 1460);
  net.sim.run();

  const auto lines = lines_of(tap.to_jsonl());
  ASSERT_EQ(lines.size(), tap.size());
  // 3 data packets, each enqueued once and delivered once.
  ASSERT_EQ(lines.size(), 6u);
  std::size_t enq = 0, del = 0;
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    EXPECT_NE(line.find("\"subject\":7"), std::string::npos);  // the flow id
    if (line.find("\"kind\":\"link.enqueued\"") != std::string::npos) ++enq;
    if (line.find("\"kind\":\"link.delivered\"") != std::string::npos) ++del;
  }
  EXPECT_EQ(enq, 3u);
  EXPECT_EQ(del, 3u);
  // The first event is the first segment's enqueue: seq 0, a full payload.
  EXPECT_NE(lines[0].find("\"kind\":\"link.enqueued\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"a\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"b\":1460"), std::string::npos);
}

TEST(TraceTapJsonl, DropsMapToLinkDropped) {
  test::HostPair net{1'000'000'000, sim::SimTime::micros(50),
                     net::QueueConfig::droptail_packets(2)};
  net::TraceTap tap;
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  tcp::TcpConfig cfg;
  cfg.initial_cwnd = 20.0;  // burst straight into the 2-packet queue
  cfg.min_rto = sim::SimTime::millis(5);
  tcp::RenoSender sender{&net.a, net.b.id(), 1, cfg};
  sender.write(20 * 1460);
  net.sim.run();
  ASSERT_GT(tap.dropped_count(), 0u);

  std::size_t dropped_lines = 0;
  for (const auto& line : lines_of(tap.to_jsonl())) {
    if (line.find("\"kind\":\"link.dropped\"") != std::string::npos) {
      ++dropped_lines;
    }
  }
  EXPECT_EQ(dropped_lines, tap.dropped_count());
}

TEST(TraceTapJsonl, BoundedRingExportsOnlyRetainedEntries) {
  test::HostPair net;
  net::TraceTap tap;
  tap.set_max_entries(4);
  tap.attach(*net.ab);
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  tcp::RenoSender sender{&net.a, net.b.id(), 1, tcp::TcpConfig{}};
  sender.write(10 * 1460);
  net.sim.run();
  EXPECT_GT(tap.total_recorded(), 4u);
  EXPECT_EQ(lines_of(tap.to_jsonl()).size(), 4u);
}

}  // namespace
}  // namespace trim
