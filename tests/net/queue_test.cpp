#include <gtest/gtest.h>

#include "net/queue.hpp"

namespace trim::net {
namespace {

Packet data_packet(std::uint32_t payload, EcnCodepoint ecn = EcnCodepoint::kNotEct) {
  Packet p;
  p.payload_bytes = payload;
  p.ecn = ecn;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q{QueueConfig::droptail_packets(10)};
  for (std::uint32_t i = 0; i < 5; ++i) {
    Packet p = data_packet(100);
    p.seq = i;
    ASSERT_TRUE(q.enqueue(std::move(p)));
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueue, PacketCapacityDropsTail) {
  DropTailQueue q{QueueConfig::droptail_packets(3)};
  EXPECT_TRUE(q.enqueue(data_packet(100)));
  EXPECT_TRUE(q.enqueue(data_packet(100)));
  EXPECT_TRUE(q.enqueue(data_packet(100)));
  EXPECT_FALSE(q.enqueue(data_packet(100)));
  EXPECT_EQ(q.len_packets(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(DropTailQueue, ByteCapacityDropsTail) {
  // 1000-byte budget; packets are payload + 40 header.
  DropTailQueue q{QueueConfig::droptail_bytes(1000)};
  EXPECT_TRUE(q.enqueue(data_packet(400)));   // 440
  EXPECT_TRUE(q.enqueue(data_packet(400)));   // 880
  EXPECT_FALSE(q.enqueue(data_packet(400)));  // would be 1320
  EXPECT_TRUE(q.enqueue(data_packet(60)));    // 980 fits
  EXPECT_EQ(q.len_bytes(), 980u);
  EXPECT_EQ(q.stats().bytes_dropped, 440u);
}

TEST(DropTailQueue, UnlimitedNeverDrops) {
  DropTailQueue q{QueueConfig{}};
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(q.enqueue(data_packet(1460)));
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(q.len_packets(), 10000u);
}

TEST(DropTailQueue, ConservationInvariant) {
  DropTailQueue q{QueueConfig::droptail_packets(5)};
  for (int i = 0; i < 20; ++i) q.enqueue(data_packet(10));
  while (q.dequeue().has_value()) {
  }
  const auto& s = q.stats();
  EXPECT_EQ(s.enqueued, s.dequeued + q.len_packets());
  EXPECT_EQ(s.enqueued + s.dropped, 20u);
}

TEST(DropTailQueue, DropCallbackFires) {
  DropTailQueue q{QueueConfig::droptail_packets(1)};
  int drops = 0;
  q.set_drop_callback([&](const Packet&) { ++drops; });
  q.enqueue(data_packet(1));
  q.enqueue(data_packet(1));
  EXPECT_EQ(drops, 1);
}

TEST(EcnDropTailQueue, MarksEctAboveThreshold) {
  EcnDropTailQueue q{QueueConfig::ecn_packets(100, 3)};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.enqueue(data_packet(100, EcnCodepoint::kEct)));
  // Occupancy is now 3 >= K: the next ECT packet is marked.
  ASSERT_TRUE(q.enqueue(data_packet(100, EcnCodepoint::kEct)));
  int marked = 0;
  while (auto p = q.dequeue()) {
    if (p->ecn == EcnCodepoint::kCe) ++marked;
  }
  EXPECT_EQ(marked, 1);
  EXPECT_EQ(q.stats().marked_ce, 1u);
}

TEST(EcnDropTailQueue, DoesNotMarkNonEct) {
  EcnDropTailQueue q{QueueConfig::ecn_packets(100, 1)};
  q.enqueue(data_packet(100, EcnCodepoint::kNotEct));
  q.enqueue(data_packet(100, EcnCodepoint::kNotEct));
  while (auto p = q.dequeue()) EXPECT_NE(p->ecn, EcnCodepoint::kCe);
  EXPECT_EQ(q.stats().marked_ce, 0u);
}

TEST(EcnDropTailQueue, StillDropsWhenFull) {
  EcnDropTailQueue q{QueueConfig::ecn_packets(2, 1)};
  q.enqueue(data_packet(1, EcnCodepoint::kEct));
  q.enqueue(data_packet(1, EcnCodepoint::kEct));
  EXPECT_FALSE(q.enqueue(data_packet(1, EcnCodepoint::kEct)));
}

TEST(EcnDropTailQueue, RequiresThreshold) {
  EXPECT_THROW(EcnDropTailQueue{QueueConfig::droptail_packets(10)},
               std::invalid_argument);
}

TEST(MakeQueue, SelectsImplementationFromConfig) {
  auto plain = make_queue(QueueConfig::droptail_packets(5));
  auto ecn = make_queue(QueueConfig::ecn_packets(5, 2));
  EXPECT_NE(dynamic_cast<DropTailQueue*>(plain.get()), nullptr);
  EXPECT_NE(dynamic_cast<EcnDropTailQueue*>(ecn.get()), nullptr);
}

}  // namespace
}  // namespace trim::net
