// Flat flow-dispatch table (Host) and ring-buffer trace tap: the two
// bounded-state observability/demux structures on the packet hot path.
#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/trace_tap.hpp"
#include "sim/simulator.hpp"

namespace trim::net {
namespace {

class CountingAgent : public Agent {
 public:
  void on_packet(const Packet&) override { ++count; }
  int count = 0;
};

Packet data_for(FlowId flow, std::uint64_t seq = 0) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.payload_bytes = 100;
  return p;
}

// ---------- Host flat dispatch ----------

TEST(HostDispatch, RoutesByFlowIdAndCountsUnroutable) {
  sim::Simulator sim;
  Host h{&sim, 0, "h"};
  CountingAgent a1, a2;
  h.register_agent(7, &a1);
  h.register_agent(9, &a2);

  h.receive(data_for(7));
  h.receive(data_for(9));
  h.receive(data_for(9));
  h.receive(data_for(8));   // hole inside the table
  h.receive(data_for(100)); // beyond the table
  h.receive(data_for(2));   // below the table's base
  EXPECT_EQ(a1.count, 1);
  EXPECT_EQ(a2.count, 2);
  EXPECT_EQ(h.unroutable_packets(), 3u);
}

TEST(HostDispatch, TableGrowsDownwardForOutOfOrderRegistration) {
  // Ids registered high-then-low: the dense table must rebase, not drop.
  sim::Simulator sim;
  Host h{&sim, 0, "h"};
  CountingAgent hi, lo;
  h.register_agent(50, &hi);
  h.register_agent(3, &lo);
  h.receive(data_for(50));
  h.receive(data_for(3));
  EXPECT_EQ(hi.count, 1);
  EXPECT_EQ(lo.count, 1);
  EXPECT_EQ(h.unroutable_packets(), 0u);
}

TEST(HostDispatch, RegistrationValidatesInput) {
  sim::Simulator sim;
  Host h{&sim, 0, "h"};
  CountingAgent a, b;
  EXPECT_THROW(h.register_agent(1, nullptr), std::invalid_argument);
  h.register_agent(1, &a);
  EXPECT_THROW(h.register_agent(1, &b), std::logic_error);
}

TEST(HostDispatch, UnregisterFreesSlotForReuse) {
  sim::Simulator sim;
  Host h{&sim, 0, "h"};
  CountingAgent a, b;
  h.register_agent(4, &a);
  h.unregister_agent(4);
  h.receive(data_for(4));
  EXPECT_EQ(h.unroutable_packets(), 1u);
  h.register_agent(4, &b);  // slot is reusable after unregister
  h.receive(data_for(4));
  EXPECT_EQ(b.count, 1);
  h.unregister_agent(4);
  h.unregister_agent(4);    // double/unknown unregister is a no-op
  h.unregister_agent(999);
}

// ---------- TraceTap ring buffer ----------

TEST(TraceTapRing, KeepsMostRecentEntriesInChronologicalOrder) {
  TraceTap tap;
  tap.set_max_entries(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tap.record(PacketEvent::kEnqueued, data_for(1, i), sim::SimTime::micros(i));
  }
  EXPECT_EQ(tap.size(), 4u);
  EXPECT_EQ(tap.total_recorded(), 10u);
  const auto entries = tap.entries();
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[i].packet.seq, 6 + i);  // oldest retained is seq 6
    EXPECT_EQ(tap.entry(i).packet.seq, 6 + i);
  }
}

TEST(TraceTapRing, CountersAreCumulativeAcrossEviction) {
  TraceTap tap;
  tap.set_max_entries(2);
  for (std::uint64_t i = 0; i < 6; ++i) {
    tap.record(PacketEvent::kDropped, data_for(1, i), sim::SimTime::micros(i));
    tap.record(PacketEvent::kDelivered, data_for(1, i), sim::SimTime::micros(i));
  }
  // Only 2 entries survive, but the counters saw everything.
  EXPECT_EQ(tap.size(), 2u);
  EXPECT_EQ(tap.dropped_count(), 6u);
  EXPECT_EQ(tap.delivered_count(), 6u);
  EXPECT_EQ(tap.total_recorded(), 12u);
}

TEST(TraceTapRing, ShrinkingTheCapKeepsTheNewestEntries) {
  TraceTap tap;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tap.record(PacketEvent::kEnqueued, data_for(1, i), sim::SimTime::micros(i));
  }
  tap.set_max_entries(3);
  const auto entries = tap.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().packet.seq, 5u);
  EXPECT_EQ(entries.back().packet.seq, 7u);
  // Appends after the shrink still land in order behind the survivors.
  tap.record(PacketEvent::kEnqueued, data_for(1, 8), sim::SimTime::micros(8));
  EXPECT_EQ(tap.entries().back().packet.seq, 8u);
  EXPECT_EQ(tap.size(), 3u);
}

TEST(TraceTapRing, FlowFilterAppliesBeforeCounters) {
  TraceTap tap;
  tap.set_flow_filter(2);
  tap.record(PacketEvent::kDropped, data_for(1, 0), sim::SimTime::zero());
  tap.record(PacketEvent::kDropped, data_for(2, 0), sim::SimTime::zero());
  EXPECT_EQ(tap.dropped_count(), 1u);
  EXPECT_EQ(tap.total_recorded(), 1u);
  EXPECT_EQ(tap.size(), 1u);
}

}  // namespace
}  // namespace trim::net
