#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"

namespace trim::net {
namespace {

// Records every delivered packet with its arrival time.
class SinkNode : public Node {
 public:
  using Node::Node;
  void receive(Packet p) override {
    arrivals.push_back({sim_->now(), std::move(p)});
  }
  std::vector<std::pair<sim::SimTime, Packet>> arrivals;
};

Packet sized_packet(std::uint32_t payload, std::uint64_t seq = 0) {
  Packet p;
  p.payload_bytes = payload;
  p.seq = seq;
  return p;
}

class LinkTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  SinkNode sink{&sim, 1, "sink"};
};

TEST_F(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  // 1460+40 = 1500 B at 1 Gbps = 12 us; plus 50 us propagation.
  Link link{&sim, "l", 1'000'000'000, sim::SimTime::micros(50),
            make_queue(QueueConfig{})};
  link.set_peer(&sink);
  link.send(sized_packet(1460));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::SimTime::micros(62));
}

TEST_F(LinkTest, BackToBackPacketsAreSerialized) {
  Link link{&sim, "l", 1'000'000'000, sim::SimTime::micros(10),
            make_queue(QueueConfig{})};
  link.set_peer(&sink);
  for (int i = 0; i < 3; ++i) link.send(sized_packet(1460, i));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  // Arrivals spaced by exactly one serialization time (12 us).
  EXPECT_EQ(sink.arrivals[0].first, sim::SimTime::micros(22));
  EXPECT_EQ(sink.arrivals[1].first, sim::SimTime::micros(34));
  EXPECT_EQ(sink.arrivals[2].first, sim::SimTime::micros(46));
  // FIFO order preserved.
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(sink.arrivals[i].second.seq, i);
}

TEST_F(LinkTest, ThroughputNeverExceedsBandwidth) {
  Link link{&sim, "l", 100'000'000, sim::SimTime::micros(10),
            make_queue(QueueConfig{})};
  link.set_peer(&sink);
  const int n = 200;
  for (int i = 0; i < n; ++i) link.send(sized_packet(1460, i));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), static_cast<std::size_t>(n));
  const double duration = (sink.arrivals.back().first - sim::SimTime::zero()).to_seconds();
  const double bits = static_cast<double>(n) * 1500 * 8;
  EXPECT_LE(bits / duration, 100e6 * 1.001);
}

TEST_F(LinkTest, QueueOverflowDropsButLinkKeepsGoing) {
  Link link{&sim, "l", 1'000'000'000, sim::SimTime::micros(10),
            make_queue(QueueConfig::droptail_packets(5))};
  link.set_peer(&sink);
  for (int i = 0; i < 50; ++i) link.send(sized_packet(1460, i));
  sim.run();
  // 5 queued + the one in transmission escaped before overflow.
  EXPECT_GE(sink.arrivals.size(), 5u);
  EXPECT_LT(sink.arrivals.size(), 50u);
  EXPECT_EQ(sink.arrivals.size() + link.queue().stats().dropped, 50u);
  EXPECT_EQ(link.packets_delivered(), sink.arrivals.size());
}

TEST_F(LinkTest, IdleThenBusyCycles) {
  Link link{&sim, "l", 1'000'000'000, sim::SimTime::micros(5),
            make_queue(QueueConfig{})};
  link.set_peer(&sink);
  link.send(sized_packet(1460));
  sim.run();
  link.send(sized_packet(1460));
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(link.bytes_delivered(), 2u * 1500u);
}

TEST_F(LinkTest, DeliveryMeterCountsBytes) {
  stats::RateMeter meter{sim::SimTime::millis(1)};
  Link link{&sim, "l", 1'000'000'000, sim::SimTime::micros(5),
            make_queue(QueueConfig{})};
  link.set_peer(&sink);
  link.set_delivery_meter(&meter);
  for (int i = 0; i < 10; ++i) link.send(sized_packet(1460));
  sim.run();
  EXPECT_EQ(meter.total_bytes(), 15'000u);
}

TEST(LinkConstruction, RejectsBadParameters) {
  sim::Simulator sim;
  EXPECT_THROW(Link(&sim, "l", 0, sim::SimTime::micros(1), make_queue(QueueConfig{})),
               std::invalid_argument);
  EXPECT_THROW(Link(nullptr, "l", 1, sim::SimTime::micros(1), make_queue(QueueConfig{})),
               std::invalid_argument);
}

}  // namespace
}  // namespace trim::net
