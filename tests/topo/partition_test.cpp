// Partitioner tests: every topology builder, at 1, 2, and 8 shards, must
// produce a full, valid, deterministic partition whose cut links all carry
// a positive propagation delay (the engine's lookahead requirement), and
// whose affinity rules keep servers on the same shard as their access
// switch.
#include "topo/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/config_error.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/fat_tree.hpp"
#include "topo/many_to_one.hpp"
#include "topo/multi_hop.hpp"
#include "topo/two_tier.hpp"

namespace trim::topo {
namespace {

struct BuilderCase {
  std::string name;
  std::function<void(net::Network&)> build;
};

std::vector<BuilderCase> builders() {
  return {
      {"many_to_one",
       [](net::Network& n) {
         ManyToOneConfig cfg;
         cfg.num_servers = 12;
         build_many_to_one(n, cfg);
       }},
      {"two_tier",
       [](net::Network& n) {
         TwoTierConfig cfg;
         cfg.num_switches = 5;
         cfg.servers_per_switch = 6;
         build_two_tier(n, cfg);
       }},
      {"multi_hop",
       [](net::Network& n) {
         MultiHopConfig cfg;
         cfg.group_size = 6;
         build_multi_hop(n, cfg);
       }},
      {"fat_tree",
       [](net::Network& n) {
         FatTreeConfig cfg;
         cfg.k = 4;
         build_fat_tree(n, cfg);
       }},
  };
}

class PartitionBuilders : public ::testing::TestWithParam<int> {};

TEST_P(PartitionBuilders, ValidCompleteAndDeterministic) {
  const int shards = GetParam();
  for (const auto& b : builders()) {
    sim::Simulator sim;
    net::Network network{&sim};
    b.build(network);

    const Partition part = partition_network(network, shards);
    SCOPED_TRACE(b.name + " @ " + std::to_string(shards) + " shards");

    // Complete and in range.
    ASSERT_EQ(part.shard_of_node.size(), network.node_count());
    for (const int s : part.shard_of_node) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
    EXPECT_EQ(part.shards, shards);
    EXPECT_GT(part.groups, 0);
    EXPECT_GE(part.imbalance(), 1.0);

    // Cut links must support conservative lookahead.
    if (part.cut_links > 0) {
      EXPECT_GT(part.min_cut_delay, sim::SimTime::zero());
    } else {
      EXPECT_EQ(part.min_cut_delay, sim::SimTime::max());
    }
    if (shards == 1) {
      EXPECT_EQ(part.cut_links, 0);
    }

    // The closed lookahead matrix is consistent with the cut census: its
    // smallest off-diagonal entry is exactly the min cut delay (the min
    // cut link is itself a one-hop path, and no path is shorter).
    ASSERT_EQ(part.lookahead.size(),
              static_cast<std::size_t>(shards) * static_cast<std::size_t>(shards));
    sim::SimTime min_pair = sim::SimTime::max();
    for (int a = 0; a < shards; ++a) {
      for (int d = 0; d < shards; ++d) {
        if (a != d) min_pair = std::min(min_pair, part.lookahead_between(a, d));
      }
    }
    if (part.cut_links > 0 && shards > 1) {
      EXPECT_EQ(min_pair, part.min_cut_delay);
    } else {
      EXPECT_EQ(min_pair, sim::SimTime::max());
    }

    // Deterministic: a pure function of the topology.
    const Partition again = partition_network(network, shards);
    EXPECT_EQ(part.shard_of_node, again.shard_of_node);
    EXPECT_EQ(part.cut_links, again.cut_links);
    EXPECT_EQ(part.lookahead, again.lookahead);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PartitionBuilders, ::testing::Values(1, 2, 8));

TEST(Partition, TwoTierKeepsRacksTogether) {
  sim::Simulator sim;
  net::Network network{&sim};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  const auto topo = build_two_tier(network, cfg);

  const Partition part = partition_network(network, 4);
  for (int s = 0; s < cfg.num_switches; ++s) {
    const int tor_shard = part.shard_of_node[topo.tors[s]->id()];
    for (const auto* host : topo.servers[s]) {
      EXPECT_EQ(part.shard_of_node[host->id()], tor_shard)
          << "server " << host->name() << " split from its ToR";
    }
  }
}

TEST(Partition, FatTreeKeepsPodsTogether) {
  sim::Simulator sim;
  net::Network network{&sim};
  FatTreeConfig cfg;
  cfg.k = 4;
  const auto topo = build_fat_tree(network, cfg);

  const Partition part = partition_network(network, 4);
  // Pod membership: k/2 edge switches, k/2 agg switches, (k/2)^2 hosts
  // per pod, appended pod-by-pod in build order.
  const int half = cfg.k / 2;
  for (int pod = 0; pod < cfg.k; ++pod) {
    const int pod_shard =
        part.shard_of_node[topo.edge_switches[pod * half]->id()];
    for (int e = 0; e < half; ++e) {
      EXPECT_EQ(part.shard_of_node[topo.edge_switches[pod * half + e]->id()], pod_shard);
      EXPECT_EQ(part.shard_of_node[topo.agg_switches[pod * half + e]->id()], pod_shard);
    }
    for (int h = 0; h < half * half; ++h) {
      EXPECT_EQ(part.shard_of_node[topo.hosts[pod * half * half + h]->id()], pod_shard);
    }
  }
  // The core layer is one group on one shard.
  const int core_shard = part.shard_of_node[topo.core_switches[0]->id()];
  for (const auto* core : topo.core_switches) {
    EXPECT_EQ(part.shard_of_node[core->id()], core_shard);
  }
}

TEST(Partition, GenericRuleCoLocatesHostsWithAccessSwitch) {
  // many_to_one carries no annotations, so the generic rule applies: the
  // hub switch seeds a group and every single-homed host joins it — one
  // group total, nothing cut at any width.
  sim::Simulator sim;
  net::Network network{&sim};
  ManyToOneConfig cfg;
  cfg.num_servers = 12;
  const auto topo = build_many_to_one(network, cfg);

  const Partition part = partition_network(network, 8);
  const int hub_shard = part.shard_of_node[topo.sw->id()];
  for (const auto* server : topo.servers) {
    EXPECT_EQ(part.shard_of_node[server->id()], hub_shard);
  }
  EXPECT_EQ(part.shard_of_node[topo.front_end->id()], hub_shard);
  EXPECT_EQ(part.cut_links, 0);
}

TEST(Partition, ShardNetworkRegistersCutLinksWithEngine) {
  sim::ShardedEngine engine{4};
  net::Network network{&engine.control()};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  build_two_tier(network, cfg);

  const Partition part = shard_network(network, engine);
  ASSERT_GT(part.cut_links, 0);
  EXPECT_TRUE(engine.sharded());
  EXPECT_EQ(engine.cut_links(), part.cut_links);
  EXPECT_EQ(engine.lookahead(), part.min_cut_delay);
  // The engine's closed per-pair matrix matches the partition's census.
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(engine.lookahead_between(s, d), part.lookahead_between(s, d))
          << "pair " << s << " -> " << d;
    }
  }
  // Every node now lives on the simulator of its assigned shard.
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    EXPECT_EQ(network.node(id).simulator(),
              &engine.shard(part.shard_of_node[id]));
    EXPECT_EQ(network.node_shard(id), part.shard_of_node[id]);
  }
}

TEST(Partition, SingleShardEngineLeavesNetworkUntouched) {
  sim::ShardedEngine engine{1};
  net::Network network{&engine.control()};
  TwoTierConfig cfg;
  cfg.num_switches = 3;
  cfg.servers_per_switch = 4;
  build_two_tier(network, cfg);

  const Partition part = shard_network(network, engine);
  EXPECT_EQ(part.cut_links, 0);
  EXPECT_FALSE(engine.sharded());
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    EXPECT_EQ(network.node(id).simulator(), &engine.control());
  }
}

// ---- per-pair lookahead matrix ----

// two_tier link delays: fabric<->frontend 10 us, tor<->fabric 20 us,
// host<->tor 20 us (always intra-rack). With fabric, frontend, and racks
// on distinct shards, every shard-pair lookahead is a sum of those.
TEST(Partition, TwoTierLookaheadMatrixAtFourShards) {
  sim::Simulator sim;
  net::Network network{&sim};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  const auto topo = build_two_tier(network, cfg);

  const Partition part = partition_network(network, 4);
  const int f = part.shard_of_node[topo.fabric->id()];
  const int e = part.shard_of_node[topo.front_end->id()];
  const int r0 = part.shard_of_node[topo.tors[0]->id()];
  const int r1 = part.shard_of_node[topo.tors[1]->id()];
  // LPT puts the heavy fabric and frontend groups on their own shards and
  // packs the five racks onto the remaining two.
  ASSERT_NE(f, e);
  ASSERT_NE(r0, f);
  ASSERT_NE(r0, e);
  ASSERT_NE(r1, r0);
  ASSERT_NE(r1, f);
  ASSERT_NE(r1, e);

  using sim::SimTime;
  EXPECT_EQ(part.lookahead_between(f, e), SimTime::micros(10));
  EXPECT_EQ(part.lookahead_between(e, f), SimTime::micros(10));
  EXPECT_EQ(part.lookahead_between(r0, f), SimTime::micros(20));
  EXPECT_EQ(part.lookahead_between(f, r0), SimTime::micros(20));
  // Multi-hop closures: rack -> fabric -> frontend, rack -> fabric -> rack.
  EXPECT_EQ(part.lookahead_between(r0, e), SimTime::micros(30));
  EXPECT_EQ(part.lookahead_between(e, r0), SimTime::micros(30));
  EXPECT_EQ(part.lookahead_between(r0, r1), SimTime::micros(40));
  EXPECT_EQ(part.lookahead_between(r1, r0), SimTime::micros(40));
  // Diagonals are min cycles: fabric -> frontend -> fabric, and
  // rack -> fabric -> rack.
  EXPECT_EQ(part.lookahead_between(f, f), SimTime::micros(20));
  EXPECT_EQ(part.lookahead_between(e, e), SimTime::micros(20));
  EXPECT_EQ(part.lookahead_between(r0, r0), SimTime::micros(40));
}

TEST(Partition, TwoTierLookaheadMatrixAtTwoAndEightShards) {
  sim::Simulator sim;
  net::Network network{&sim};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  const auto topo = build_two_tier(network, cfg);

  // 2 shards: fabric and frontend land apart (fabric is the heaviest
  // group); their 10 us link is the shortest cut in both directions.
  const Partition two = partition_network(network, 2);
  const int f2 = two.shard_of_node[topo.fabric->id()];
  const int e2 = two.shard_of_node[topo.front_end->id()];
  ASSERT_NE(f2, e2);
  EXPECT_EQ(two.lookahead_between(f2, e2), sim::SimTime::micros(10));
  EXPECT_EQ(two.lookahead_between(e2, f2), sim::SimTime::micros(10));

  // 8 shards: 7 groups leave one shard empty — nothing reaches it and it
  // reaches nothing, so its whole row and column stay at max().
  const Partition eight = partition_network(network, 8);
  std::vector<bool> used(8, false);
  for (const int s : eight.shard_of_node) used[static_cast<std::size_t>(s)] = true;
  int empty = -1;
  for (int s = 0; s < 8; ++s) {
    if (!used[static_cast<std::size_t>(s)]) empty = s;
  }
  ASSERT_GE(empty, 0);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(eight.lookahead_between(empty, s), sim::SimTime::max());
    EXPECT_EQ(eight.lookahead_between(s, empty), sim::SimTime::max());
  }
  const int f8 = eight.shard_of_node[topo.fabric->id()];
  const int e8 = eight.shard_of_node[topo.front_end->id()];
  const int r8 = eight.shard_of_node[topo.tors[0]->id()];
  ASSERT_NE(f8, e8);
  ASSERT_NE(r8, f8);
  EXPECT_EQ(eight.lookahead_between(f8, e8), sim::SimTime::micros(10));
  EXPECT_EQ(eight.lookahead_between(r8, e8), sim::SimTime::micros(30));
}

// fat_tree uses one uniform link delay (10 us): pod <-> core cuts are one
// hop, pod <-> pod always closes through the core layer at two hops.
TEST(Partition, FatTreeLookaheadMatrixAtTwoFourEightShards) {
  using sim::SimTime;
  for (const int shards : {2, 4, 8}) {
    sim::Simulator sim;
    net::Network network{&sim};
    FatTreeConfig cfg;
    cfg.k = 4;
    const auto topo = build_fat_tree(network, cfg);
    const Partition part = partition_network(network, shards);
    SCOPED_TRACE("fat_tree @ " + std::to_string(shards) + " shards");

    const int half = cfg.k / 2;
    const int core = part.shard_of_node[topo.core_switches[0]->id()];
    std::vector<int> pod_shard;
    for (int pod = 0; pod < cfg.k; ++pod) {
      pod_shard.push_back(
          part.shard_of_node[topo.edge_switches[pod * half]->id()]);
    }
    for (int pod = 0; pod < cfg.k; ++pod) {
      if (pod_shard[static_cast<std::size_t>(pod)] == core) continue;
      EXPECT_EQ(part.lookahead_between(pod_shard[static_cast<std::size_t>(pod)], core),
                SimTime::micros(10));
      EXPECT_EQ(part.lookahead_between(core, pod_shard[static_cast<std::size_t>(pod)]),
                SimTime::micros(10));
    }
    for (int a = 0; a < cfg.k; ++a) {
      for (int b = 0; b < cfg.k; ++b) {
        const int sa = pod_shard[static_cast<std::size_t>(a)];
        const int sb = pod_shard[static_cast<std::size_t>(b)];
        if (sa == sb || sa == core || sb == core) continue;
        // Pods never touch directly; the closure routes through the core.
        EXPECT_EQ(part.lookahead_between(sa, sb), SimTime::micros(20));
      }
    }
  }
}

TEST(Partition, AsymmetricCutDelaysStayDirectional) {
  // A hand-built two-node topology with different per-direction delays:
  // the matrix must keep 5 us one way and 9 us the other, unlike the
  // direction-blind global lookahead (which collapses to 5 us).
  sim::Simulator sim;
  net::Network network{&sim};
  auto* a = network.add_host("a");
  a->set_part_group(0);
  auto* b = network.add_host("b");
  b->set_part_group(1);
  const net::LinkSpec a_to_b{net::kGbps, sim::SimTime::micros(5), {}};
  const net::LinkSpec b_to_a{net::kGbps, sim::SimTime::micros(9), {}};
  network.connect(*a, *b, a_to_b, b_to_a);
  network.build_routes();

  const Partition part = partition_network(network, 2);
  const int sa = part.shard_of_node[a->id()];
  const int sb = part.shard_of_node[b->id()];
  ASSERT_NE(sa, sb);
  EXPECT_EQ(part.min_cut_delay, sim::SimTime::micros(5));
  EXPECT_EQ(part.lookahead_between(sa, sb), sim::SimTime::micros(5));
  EXPECT_EQ(part.lookahead_between(sb, sa), sim::SimTime::micros(9));
  // Diagonal cycle: out and back.
  EXPECT_EQ(part.lookahead_between(sa, sa), sim::SimTime::micros(14));
  EXPECT_EQ(part.lookahead_between(sb, sb), sim::SimTime::micros(14));
  EXPECT_THROW(part.lookahead_between(2, 0), ConfigError);
}

TEST(Partition, ZeroDelayCutLinkRejectedByEngine) {
  // partition_network reports the zero-delay cut; wiring it into the
  // engine is what must fail (conservative sync cannot make progress).
  sim::ShardedEngine engine{2};
  net::Network network{&engine.control()};
  auto* a = network.add_host("a");
  a->set_part_group(0);
  auto* b = network.add_host("b");
  b->set_part_group(1);
  const net::LinkSpec a_to_b{net::kGbps, sim::SimTime::zero(), {}};
  const net::LinkSpec b_to_a{net::kGbps, sim::SimTime::micros(9), {}};
  network.connect(*a, *b, a_to_b, b_to_a);
  network.build_routes();

  const Partition part = partition_network(network, 2);
  ASSERT_EQ(part.cut_links, 2);
  EXPECT_EQ(part.min_cut_delay, sim::SimTime::zero());
  EXPECT_THROW(shard_network(network, engine), ConfigError);
}

TEST(Partition, RejectsBadShardCount) {
  sim::Simulator sim;
  net::Network network{&sim};
  ManyToOneConfig cfg;
  build_many_to_one(network, cfg);
  EXPECT_THROW(partition_network(network, 0), ConfigError);
}

}  // namespace
}  // namespace trim::topo
