// Partitioner tests: every topology builder, at 1, 2, and 8 shards, must
// produce a full, valid, deterministic partition whose cut links all carry
// a positive propagation delay (the engine's lookahead requirement), and
// whose affinity rules keep servers on the same shard as their access
// switch.
#include "topo/partition.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/config_error.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"
#include "topo/fat_tree.hpp"
#include "topo/many_to_one.hpp"
#include "topo/multi_hop.hpp"
#include "topo/two_tier.hpp"

namespace trim::topo {
namespace {

struct BuilderCase {
  std::string name;
  std::function<void(net::Network&)> build;
};

std::vector<BuilderCase> builders() {
  return {
      {"many_to_one",
       [](net::Network& n) {
         ManyToOneConfig cfg;
         cfg.num_servers = 12;
         build_many_to_one(n, cfg);
       }},
      {"two_tier",
       [](net::Network& n) {
         TwoTierConfig cfg;
         cfg.num_switches = 5;
         cfg.servers_per_switch = 6;
         build_two_tier(n, cfg);
       }},
      {"multi_hop",
       [](net::Network& n) {
         MultiHopConfig cfg;
         cfg.group_size = 6;
         build_multi_hop(n, cfg);
       }},
      {"fat_tree",
       [](net::Network& n) {
         FatTreeConfig cfg;
         cfg.k = 4;
         build_fat_tree(n, cfg);
       }},
  };
}

class PartitionBuilders : public ::testing::TestWithParam<int> {};

TEST_P(PartitionBuilders, ValidCompleteAndDeterministic) {
  const int shards = GetParam();
  for (const auto& b : builders()) {
    sim::Simulator sim;
    net::Network network{&sim};
    b.build(network);

    const Partition part = partition_network(network, shards);
    SCOPED_TRACE(b.name + " @ " + std::to_string(shards) + " shards");

    // Complete and in range.
    ASSERT_EQ(part.shard_of_node.size(), network.node_count());
    for (const int s : part.shard_of_node) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shards);
    }
    EXPECT_EQ(part.shards, shards);
    EXPECT_GT(part.groups, 0);
    EXPECT_GE(part.imbalance(), 1.0);

    // Cut links must support conservative lookahead.
    if (part.cut_links > 0) {
      EXPECT_GT(part.min_cut_delay, sim::SimTime::zero());
    } else {
      EXPECT_EQ(part.min_cut_delay, sim::SimTime::max());
    }
    if (shards == 1) {
      EXPECT_EQ(part.cut_links, 0);
    }

    // Deterministic: a pure function of the topology.
    const Partition again = partition_network(network, shards);
    EXPECT_EQ(part.shard_of_node, again.shard_of_node);
    EXPECT_EQ(part.cut_links, again.cut_links);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, PartitionBuilders, ::testing::Values(1, 2, 8));

TEST(Partition, TwoTierKeepsRacksTogether) {
  sim::Simulator sim;
  net::Network network{&sim};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  const auto topo = build_two_tier(network, cfg);

  const Partition part = partition_network(network, 4);
  for (int s = 0; s < cfg.num_switches; ++s) {
    const int tor_shard = part.shard_of_node[topo.tors[s]->id()];
    for (const auto* host : topo.servers[s]) {
      EXPECT_EQ(part.shard_of_node[host->id()], tor_shard)
          << "server " << host->name() << " split from its ToR";
    }
  }
}

TEST(Partition, FatTreeKeepsPodsTogether) {
  sim::Simulator sim;
  net::Network network{&sim};
  FatTreeConfig cfg;
  cfg.k = 4;
  const auto topo = build_fat_tree(network, cfg);

  const Partition part = partition_network(network, 4);
  // Pod membership: k/2 edge switches, k/2 agg switches, (k/2)^2 hosts
  // per pod, appended pod-by-pod in build order.
  const int half = cfg.k / 2;
  for (int pod = 0; pod < cfg.k; ++pod) {
    const int pod_shard =
        part.shard_of_node[topo.edge_switches[pod * half]->id()];
    for (int e = 0; e < half; ++e) {
      EXPECT_EQ(part.shard_of_node[topo.edge_switches[pod * half + e]->id()], pod_shard);
      EXPECT_EQ(part.shard_of_node[topo.agg_switches[pod * half + e]->id()], pod_shard);
    }
    for (int h = 0; h < half * half; ++h) {
      EXPECT_EQ(part.shard_of_node[topo.hosts[pod * half * half + h]->id()], pod_shard);
    }
  }
  // The core layer is one group on one shard.
  const int core_shard = part.shard_of_node[topo.core_switches[0]->id()];
  for (const auto* core : topo.core_switches) {
    EXPECT_EQ(part.shard_of_node[core->id()], core_shard);
  }
}

TEST(Partition, GenericRuleCoLocatesHostsWithAccessSwitch) {
  // many_to_one carries no annotations, so the generic rule applies: the
  // hub switch seeds a group and every single-homed host joins it — one
  // group total, nothing cut at any width.
  sim::Simulator sim;
  net::Network network{&sim};
  ManyToOneConfig cfg;
  cfg.num_servers = 12;
  const auto topo = build_many_to_one(network, cfg);

  const Partition part = partition_network(network, 8);
  const int hub_shard = part.shard_of_node[topo.sw->id()];
  for (const auto* server : topo.servers) {
    EXPECT_EQ(part.shard_of_node[server->id()], hub_shard);
  }
  EXPECT_EQ(part.shard_of_node[topo.front_end->id()], hub_shard);
  EXPECT_EQ(part.cut_links, 0);
}

TEST(Partition, ShardNetworkRegistersCutLinksWithEngine) {
  sim::ShardedEngine engine{4};
  net::Network network{&engine.control()};
  TwoTierConfig cfg;
  cfg.num_switches = 5;
  cfg.servers_per_switch = 6;
  build_two_tier(network, cfg);

  const Partition part = shard_network(network, engine);
  ASSERT_GT(part.cut_links, 0);
  EXPECT_TRUE(engine.sharded());
  EXPECT_EQ(engine.cut_links(), part.cut_links);
  EXPECT_EQ(engine.lookahead(), part.min_cut_delay);
  // Every node now lives on the simulator of its assigned shard.
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    EXPECT_EQ(network.node(id).simulator(),
              &engine.shard(part.shard_of_node[id]));
    EXPECT_EQ(network.node_shard(id), part.shard_of_node[id]);
  }
}

TEST(Partition, SingleShardEngineLeavesNetworkUntouched) {
  sim::ShardedEngine engine{1};
  net::Network network{&engine.control()};
  TwoTierConfig cfg;
  cfg.num_switches = 3;
  cfg.servers_per_switch = 4;
  build_two_tier(network, cfg);

  const Partition part = shard_network(network, engine);
  EXPECT_EQ(part.cut_links, 0);
  EXPECT_FALSE(engine.sharded());
  for (net::NodeId id = 0; id < network.node_count(); ++id) {
    EXPECT_EQ(network.node(id).simulator(), &engine.control());
  }
}

TEST(Partition, RejectsBadShardCount) {
  sim::Simulator sim;
  net::Network network{&sim};
  ManyToOneConfig cfg;
  build_many_to_one(network, cfg);
  EXPECT_THROW(partition_network(network, 0), ConfigError);
}

}  // namespace
}  // namespace trim::topo
