#include <gtest/gtest.h>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "topo/fat_tree.hpp"
#include "topo/many_to_one.hpp"
#include "topo/multi_hop.hpp"
#include "topo/two_tier.hpp"

namespace trim::topo {
namespace {

// Transfer helper: returns true if `bytes` arrive from src to dst.
bool can_transfer(exp::World& world, net::Host& src, net::Host& dst,
                  std::uint64_t bytes = 20'000) {
  auto flow = core::make_protocol_flow(world.network, src, dst,
                                       tcp::Protocol::kReno, core::ProtocolOptions{});
  flow.sender->write(bytes);
  world.simulator.run_until(world.simulator.now() + sim::SimTime::seconds(2));
  return flow.sender->idle() && flow.receiver->delivered_bytes() == bytes;
}

TEST(ManyToOne, StructureAndReachability) {
  exp::World world;
  ManyToOneConfig cfg;
  cfg.num_servers = 5;
  const auto topo = build_many_to_one(world.network, cfg);
  ASSERT_EQ(topo.servers.size(), 5u);
  ASSERT_NE(topo.front_end, nullptr);
  ASSERT_NE(topo.bottleneck, nullptr);
  EXPECT_EQ(world.network.node_count(), 7u);  // 5 servers + switch + front-end
  EXPECT_TRUE(can_transfer(world, *topo.servers[0], *topo.front_end));
  EXPECT_TRUE(can_transfer(world, *topo.servers[4], *topo.front_end));
  // Reverse direction works too (ACK path is symmetric).
  EXPECT_TRUE(can_transfer(world, *topo.front_end, *topo.servers[2]));
}

TEST(ManyToOne, BottleneckQueueIsConfiguredBuffer) {
  exp::World world;
  ManyToOneConfig cfg;
  cfg.switch_buffer_pkts = 37;
  const auto topo = build_many_to_one(world.network, cfg);
  // Stuff the bottleneck directly and count survivors.
  for (int i = 0; i < 100; ++i) {
    net::Packet p;
    p.payload_bytes = 1460;
    p.dst = topo.front_end->id();
    topo.bottleneck->send(std::move(p));
  }
  // 37 queued + 1 in flight accepted before overflow.
  EXPECT_GE(topo.bottleneck->queue().stats().dropped, 100u - 40u);
}

TEST(ManyToOne, ServerRateOverrideApplies) {
  exp::World world;
  ManyToOneConfig cfg;
  cfg.server_link_bps = 1'100'000'000;
  const auto topo = build_many_to_one(world.network, cfg);
  EXPECT_EQ(topo.servers[0]->out_link(0).bits_per_sec(), 1'100'000'000u);
  EXPECT_EQ(topo.bottleneck->bits_per_sec(), 1'000'000'000u);
  EXPECT_THROW(build_many_to_one(world.network, ManyToOneConfig{.num_servers = 0}),
               std::invalid_argument);
}

TEST(TwoTier, StructureAndCrossRackReachability) {
  exp::World world;
  TwoTierConfig cfg;
  cfg.num_switches = 3;
  cfg.servers_per_switch = 4;
  const auto topo = build_two_tier(world.network, cfg);
  EXPECT_EQ(topo.total_servers(), 12);
  EXPECT_EQ(topo.tors.size(), 3u);
  // Server under ToR 2 reaches the front-end through the fabric.
  EXPECT_TRUE(can_transfer(world, *topo.servers[2][3], *topo.front_end));
  // Server-to-server across racks also routes.
  EXPECT_TRUE(can_transfer(world, *topo.servers[0][0], *topo.servers[1][1]));
}

TEST(MultiHop, GroupsAndBottlenecksWired) {
  exp::World world;
  MultiHopConfig cfg;
  cfg.group_size = 3;
  const auto topo = build_multi_hop(world.network, cfg);
  EXPECT_EQ(topo.group_a.size(), 3u);
  EXPECT_EQ(topo.bottleneck1->bits_per_sec(), 10u * net::kGbps);
  EXPECT_EQ(topo.bottleneck2->bits_per_sec(), 10u * net::kGbps);
  // A -> front-end crosses both bottlenecks.
  EXPECT_TRUE(can_transfer(world, *topo.group_a[0], *topo.front_end));
  // C -> D crosses only the first.
  EXPECT_TRUE(can_transfer(world, *topo.group_c[1], *topo.group_d[1]));
  // B -> front-end crosses only the second.
  EXPECT_TRUE(can_transfer(world, *topo.group_b[2], *topo.front_end));
}

TEST(FatTree, StructureCountsMatchKAryFormulae) {
  exp::World world;
  FatTreeConfig cfg;
  cfg.k = 4;
  const auto topo = build_fat_tree(world.network, cfg);
  EXPECT_EQ(topo.hosts.size(), 16u);          // k^3/4
  EXPECT_EQ(topo.core_switches.size(), 4u);   // (k/2)^2
  EXPECT_EQ(topo.agg_switches.size(), 8u);    // k * k/2
  EXPECT_EQ(topo.edge_switches.size(), 8u);
  EXPECT_EQ(topo.hosts_per_pod(), 4);
}

TEST(FatTree, IntraPodAndInterPodRouting) {
  exp::World world;
  const auto topo = build_fat_tree(world.network, FatTreeConfig{.k = 4});
  // Same edge switch.
  EXPECT_TRUE(can_transfer(world, *topo.hosts[0], *topo.hosts[1]));
  // Same pod, different edge switch.
  EXPECT_TRUE(can_transfer(world, *topo.hosts[0], *topo.hosts[2]));
  // Different pods (crosses the core).
  EXPECT_TRUE(can_transfer(world, *topo.hosts[0], *topo.hosts[15]));
}

TEST(FatTree, EcmpUsesMultipleCores) {
  exp::World world;
  const auto topo = build_fat_tree(world.network, FatTreeConfig{.k = 4});
  // Many flows from pod 0 to pod 3: the cores should share the load.
  std::vector<tcp::Flow> flows;
  for (int i = 0; i < 32; ++i) {
    flows.push_back(core::make_protocol_flow(
        world.network, *topo.hosts[i % 4], *topo.hosts[12 + i % 4],
        tcp::Protocol::kReno, core::ProtocolOptions{}));
    flows.back().sender->write(14'600);
  }
  world.simulator.run_until(sim::SimTime::seconds(2));
  int cores_used = 0;
  for (auto* sw : topo.core_switches) {
    if (sw->forwarded_packets() > 0) ++cores_used;
  }
  EXPECT_GE(cores_used, 3);  // salted ECMP must spread across cores
  for (auto& f : flows) EXPECT_TRUE(f.sender->idle());
}

TEST(FatTree, RejectsOddK) {
  exp::World world;
  EXPECT_THROW(build_fat_tree(world.network, FatTreeConfig{.k = 3}),
               std::invalid_argument);
  EXPECT_THROW(build_fat_tree(world.network, FatTreeConfig{.k = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace trim::topo
