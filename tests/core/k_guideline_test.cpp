#include <gtest/gtest.h>

#include <cmath>

#include "core/k_guideline.hpp"

namespace trim::core {
namespace {

using sim::SimTime;

// The paper's reference scenario: 1 Gbps bottleneck, MSS 1460 (+40 header),
// base RTT 100 us.
constexpr double kCPps = 1e9 / (1500.0 * 8.0);  // ~83333 pkt/s
const SimTime kD = SimTime::micros(100);

TEST(PacketsPerSecond, MatchesHandComputation) {
  EXPECT_NEAR(packets_per_second(1'000'000'000, 1460), kCPps, 1.0);
  EXPECT_NEAR(packets_per_second(10'000'000'000ull, 1460), 10 * kCPps, 10.0);
  EXPECT_THROW(packets_per_second(0, 1460), std::invalid_argument);
  EXPECT_THROW(packets_per_second(1'000'000'000, 0), std::invalid_argument);
}

TEST(FOfN, MatchesEquation17) {
  // F(N) = 2ND/(N+1) - N/C.
  const double d = kD.to_seconds();
  const double n = 3.0;
  EXPECT_NEAR(f_of_n(n, d, kCPps), 2 * n * d / (n + 1) - n / kCPps, 1e-15);
  EXPECT_THROW(f_of_n(0.0, d, kCPps), std::invalid_argument);
}

TEST(StationaryN, IsTheRootOfEquation19) {
  const double d = kD.to_seconds();
  const double n_star = stationary_n(d, kCPps);
  ASSERT_GT(n_star, 0.0);
  // Eq. 19: N^2/C + 2N/C + 1/C - 2D = 0.
  const double residual =
      n_star * n_star / kCPps + 2 * n_star / kCPps + 1 / kCPps - 2 * d;
  EXPECT_NEAR(residual, 0.0, 1e-12);
}

TEST(StationaryN, IsTheMaximumOfF) {
  const double d = kD.to_seconds();
  const double n_star = stationary_n(d, kCPps);
  const double f_star = f_of_n(n_star, d, kCPps);
  // F is smaller a bit to each side (interior maximum, Eq. 20: F'' < 0).
  EXPECT_GT(f_star, f_of_n(n_star * 0.8, d, kCPps));
  EXPECT_GT(f_star, f_of_n(n_star * 1.2, d, kCPps));
  // And matches the closed form of Eq. 21.
  EXPECT_NEAR(f_star, f_max(d, kCPps), 1e-12);
}

TEST(FMax, NumericallyDominatesFSweep) {
  const double d = kD.to_seconds();
  const double bound = f_max(d, kCPps);
  for (double n = 0.5; n < 200.0; n += 0.5) {
    EXPECT_LE(f_of_n(n, d, kCPps), bound + 1e-12) << "N=" << n;
  }
}

TEST(RecommendedK, IsAtLeastBaseRttAndFmax) {
  const auto k = recommended_k(kD, kCPps);
  EXPECT_GE(k, kD);
  // 1 ns slack: SimTime::seconds truncates to integer nanoseconds.
  EXPECT_GE(k.to_seconds(), f_max(kD.to_seconds(), kCPps) - 1e-9);
}

TEST(RecommendedK, FallsBackToDWhenCapacityTiny) {
  // 2CD <= 1: F has no interior max, K = D.
  const auto k = recommended_k(SimTime::micros(1), 1000.0);
  EXPECT_EQ(k, SimTime::micros(1));
  EXPECT_THROW(recommended_k(kD, 0.0), std::invalid_argument);
}

TEST(RecommendedK, GrowsWithBaseRtt) {
  EXPECT_LT(recommended_k(SimTime::micros(50), kCPps),
            recommended_k(SimTime::micros(500), kCPps));
}

TEST(QueueFormulas, Equations4And7) {
  const auto k = SimTime::micros(150);
  // Q = C(K - D) (Eq. 4).
  EXPECT_NEAR(desired_queue_packets(kCPps, k, kD), kCPps * 50e-6, 1e-9);
  // Qmax = Q + N (Eq. 7).
  EXPECT_NEAR(max_queue_packets(kCPps, k, kD, 8),
              desired_queue_packets(kCPps, k, kD) + 8.0, 1e-9);
}

TEST(RecommendedK, ReferenceScenarioIsReasonable) {
  // At 1 Gbps / 100 us: K should allow a small standing queue (a few to a
  // few dozen packets), not zero and not the whole buffer.
  const auto k = recommended_k(kD, kCPps);
  const double q = desired_queue_packets(kCPps, k, kD);
  EXPECT_GT(q, 0.5);
  EXPECT_LT(q, 50.0);
}

}  // namespace
}  // namespace trim::core
