#include <gtest/gtest.h>

#include "core/trim_sender.hpp"
#include "tcp/reno.hpp"
#include "tcp/tcp_receiver.hpp"
#include "../tcp/tcp_test_util.hpp"

namespace trim::core {
namespace {

using test::HostPair;

TrimConfig gig_trim() { return TrimConfig::for_link(1'000'000'000, 1460); }

struct TrimFlow {
  explicit TrimFlow(HostPair& net, TrimConfig trim, tcp::TcpConfig cfg = {})
      : receiver{&net.b, 1, net.a.id()},
        sender{&net.a, net.b.id(), 1, cfg, trim} {}
  tcp::TcpReceiver receiver;
  TrimSender sender;
};

TEST(TrimSender, RequiresCapacityOrOverride) {
  HostPair net;
  tcp::TcpReceiver recv{&net.b, 1, net.a.id()};
  EXPECT_THROW(TrimSender(&net.a, net.b.id(), 2, tcp::TcpConfig{}, TrimConfig{}),
               std::invalid_argument);
  TrimConfig with_override;
  with_override.k_override = sim::SimTime::micros(150);
  TrimSender ok{&net.a, net.b.id(), 3, tcp::TcpConfig{}, with_override};
  EXPECT_EQ(ok.k_threshold(), sim::SimTime::micros(150));
}

TEST(TrimSender, EnforcesMinimumWindowOfTwo) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  EXPECT_GE(f.sender.cwnd(), 2.0);
  EXPECT_GE(f.sender.config().min_cwnd, 2.0);
  EXPECT_GE(f.sender.config().cwnd_after_rto, 2.0);
}

TEST(TrimSender, DeliversCleanStream) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  f.sender.write(500 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 500u * 1460);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
}

TEST(TrimSender, NoProbingDuringContinuousTrain) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  f.sender.write(2000 * 1460);  // back-to-back, no idle gaps
  net.sim.run();
  EXPECT_EQ(f.sender.stats().probe_rounds, 0u);
}

TEST(TrimSender, ProbesAfterInterTrainGap) {
  // Wide path (BDP ~85 pkts) so the first train builds a real window.
  HostPair net{1'000'000'000, sim::SimTime::micros(500)};
  TrimFlow f{net, gig_trim()};
  f.sender.write(300 * 1460);  // train 1 builds smooth_RTT and the window
  net.sim.run();
  const double inherited = f.sender.cwnd();
  EXPECT_GT(inherited, 40.0);
  // OFF period far exceeding the ~1 ms smooth RTT.
  net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(100 * 1460); });
  net.sim.run();
  EXPECT_EQ(f.sender.stats().probe_rounds, 1u);
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 400u * 1460);
}

TEST(TrimSender, ProbeOnIdleNetworkRestoresSavedWindow) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  f.sender.write(200 * 1460);
  net.sim.run();
  const double inherited = f.sender.cwnd();
  net.sim.schedule(sim::SimTime::millis(5), [&] { f.sender.write(200 * 1460); });
  net.sim.run();
  // Probe RTT == min RTT on an idle path: Eq. (1) gives cwnd = s_cwnd.
  // Allow a little slack for the post-resume growth/backoff dynamics.
  EXPECT_GT(f.sender.cwnd(), inherited * 0.5);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
}

TEST(TrimSender, SmallTrainsStillProbe) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  f.sender.write(3 * 1460);
  net.sim.run();
  // A 1-packet train after a gap: Sec. III-C says it still probes.
  net.sim.schedule(sim::SimTime::millis(5), [&] { f.sender.write(1000); });
  net.sim.run();
  EXPECT_EQ(f.sender.stats().probe_rounds, 1u);
  EXPECT_TRUE(f.sender.idle());
}

TEST(TrimSender, LostProbesFallBackToMinimumWindow) {
  HostPair net;
  tcp::TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  TrimFlow f{net, gig_trim(), cfg};
  f.sender.write(100 * 1460);
  net.sim.run();
  // Both probes of the next train die; the probe timer must fire, resume
  // at cwnd=2, and the normal RTO machinery repairs the loss.
  net.data_queue->drop_next_data(2);
  net.sim.schedule(sim::SimTime::millis(5), [&] { f.sender.write(50 * 1460); });
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 150u * 1460);
  EXPECT_EQ(f.sender.stats().probe_rounds, 1u);
}

TEST(TrimSender, CongestedProbeShrinksInheritedWindow) {
  // Cross traffic fills the bottleneck during the OFF period: the probe
  // RTT comes back inflated and Eq. (1) must shrink the inherited window.
  HostPair net{1'000'000'000, sim::SimTime::micros(500),
               net::QueueConfig::droptail_packets(200)};
  TrimFlow f{net, gig_trim()};

  f.sender.write(500 * 1460);
  net.sim.run();
  const double inherited = f.sender.cwnd();
  ASSERT_GT(inherited, 40.0);

  // Deterministic congestion: a 150-packet burst from "other connections"
  // lands in the bottleneck just before the next train, so the probes
  // queue behind ~1.8 ms of backlog and Eq. (1) must slash the window.
  net.sim.schedule(sim::SimTime::millis(30) - sim::SimTime::micros(100), [&] {
    for (int i = 0; i < 150; ++i) {
      net::Packet p;
      p.dst = net.b.id();
      p.flow = 999;  // unregistered: dropped at the host, harmless
      p.payload_bytes = 1460;
      net.ab->send(std::move(p));
    }
  });
  double tuned = -1.0;
  net.sim.schedule(sim::SimTime::millis(30), [&] { f.sender.write(100 * 1460); });
  net.sim.schedule(sim::SimTime::millis(33), [&] { tuned = f.sender.cwnd(); });
  net.sim.run();
  EXPECT_EQ(f.sender.stats().probe_rounds, 1u);
  EXPECT_TRUE(f.sender.idle());
  // The tuned window had to be far below the inherited one: congestion was
  // detected from the inflated probe RTT (Eq. 1).
  ASSERT_GE(tuned, 2.0);
  EXPECT_LT(tuned, inherited * 0.6);
}

TEST(TrimSender, QueueControlKeepsStandingQueueSmall) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::droptail_packets(100)};
  stats::TimeSeries queue_trace;
  net.data_queue->set_length_trace(&queue_trace, &net.sim);
  TrimFlow f{net, gig_trim()};
  f.sender.write(5000 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(net.data_queue->stats().dropped, 0u);
  EXPECT_GT(f.sender.stats().delay_backoffs, 0u);
  // The paper's Fig. 9: TRIM holds a small, stable queue (<< 100 buffer).
  EXPECT_LT(queue_trace.max_value(), 60.0);
}

TEST(TrimSender, WindowNeverDropsBelowTwoUnderHeavyLoss) {
  HostPair net;
  tcp::TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  TrimFlow f{net, gig_trim(), cfg};
  stats::TimeSeries cwnd_trace;
  f.sender.set_cwnd_trace(&cwnd_trace);
  for (int i = 0; i < 6; ++i) net.data_queue->drop_next_data(1);
  f.sender.write(100 * 1460);
  net.sim.run();
  EXPECT_TRUE(f.sender.idle());
  EXPECT_GE(cwnd_trace.min_value(), 2.0);
}

TEST(TrimSender, KTracksMinRttViaEq22) {
  HostPair net;  // 50 us each way: base RTT ~112 us
  TrimFlow f{net, gig_trim()};
  f.sender.write(50 * 1460);
  net.sim.run();
  const auto d = f.sender.min_rtt();
  EXPECT_EQ(f.sender.k_threshold(), recommended_k(d, gig_trim().capacity_pps));
  EXPECT_GE(f.sender.k_threshold(), d);
}

TEST(TrimSender, AblationProbeOffNeverProbes) {
  HostPair net;
  auto trim = gig_trim();
  trim.probe_on_gap = false;
  TrimFlow f{net, trim};
  f.sender.write(100 * 1460);
  net.sim.run();
  net.sim.schedule(sim::SimTime::millis(5), [&] { f.sender.write(100 * 1460); });
  net.sim.run();
  EXPECT_EQ(f.sender.stats().probe_rounds, 0u);
}

TEST(TrimSender, AblationQueueControlOffNeverDelayBacksOff) {
  HostPair net{1'000'000'000, sim::SimTime::micros(50),
               net::QueueConfig::droptail_packets(100)};
  auto trim = gig_trim();
  trim.queue_control = false;
  TrimFlow f{net, trim};
  f.sender.write(2000 * 1460);
  net.sim.run();
  EXPECT_EQ(f.sender.stats().delay_backoffs, 0u);
  // Without delay control a single Reno-grown flow overflows the buffer.
  EXPECT_GT(net.data_queue->stats().dropped, 0u);
}

TEST(TrimSender, SmoothRttFollowsPaperAlpha) {
  HostPair net;
  TrimFlow f{net, gig_trim()};
  f.sender.write(20 * 1460);
  net.sim.run();
  // smooth_RTT should be near the true ~112 us RTT after a short train.
  EXPECT_NEAR(f.sender.smooth_rtt().to_micros(), 112.0, 15.0);
  EXPECT_NEAR(f.sender.trim_config().smooth_alpha, 0.25, 1e-12);
}

}  // namespace
}  // namespace trim::core
