// TRIM's probe machinery (Algorithm 1 / Eq. 1) under injected faults:
// late probe ACKs, lost probes, and the Eq. 1 clamp at the minimum window.
#include <gtest/gtest.h>

#include "core/trim_sender.hpp"
#include "fault/fault_injector.hpp"
#include "stats/time_series.hpp"
#include "tcp/tcp_receiver.hpp"
#include "../tcp/tcp_test_util.hpp"

namespace trim::core {
namespace {

using test::HostPair;

TrimConfig gig_trim() { return TrimConfig::for_link(1'000'000'000, 1460); }

struct TrimFlow {
  explicit TrimFlow(HostPair& net, TrimConfig trim, tcp::TcpConfig cfg = {})
      : receiver{&net.b, 1, net.a.id()},
        sender{&net.a, net.b.id(), 1, cfg, trim} {}
  tcp::TcpReceiver receiver;
  TrimSender sender;
};

// The network's delay grows while the connection sits idle (rerouting onto
// a longer path): the probe ACK misses the smooth-RTT deadline, so the
// sender must resume at the paper's fallback cwnd = 2.
TEST(TrimProbeFault, LateProbeAckResumesAtMinimumWindow) {
  HostPair net;
  fault::FaultInjector inj{&net.sim, fault::FaultConfig{}};
  inj.attach(*net.ab);  // data path
  TrimFlow f{net, gig_trim()};

  f.sender.write(200 * 1460);  // train 1: builds the window and smooth_RTT
  net.sim.run();
  ASSERT_GT(f.sender.cwnd(), 2.0);

  // +5 ms one-way from now on: far beyond the ~112 us smooth RTT, so the
  // probe ACK cannot make the deadline.
  inj.set_added_delay(sim::SimTime::millis(5));
  net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(50 * 1460); });
  double resumed = -1.0;
  net.sim.schedule(sim::SimTime::millis(11), [&] { resumed = f.sender.cwnd(); });
  net.sim.run();

  // The probe timer fired ~one smooth RTT after the probes went out; well
  // before any 5 ms-delayed ACK could return, cwnd was back at the floor.
  EXPECT_EQ(resumed, 2.0);
  EXPECT_GE(f.sender.stats().probe_rounds, 1u);
  EXPECT_TRUE(f.sender.idle());
  EXPECT_FALSE(f.sender.probing());
  EXPECT_EQ(f.receiver.delivered_bytes(), 250u * 1460);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);  // RTO floor (200 ms) never hit
}

// Both probes die on the wire (deterministic loss window around the probe
// instant): the probe timer resumes at cwnd = 2 and the normal loss
// machinery repairs the train.
TEST(TrimProbeFault, LostProbesUnderBernoulliLossStillComplete) {
  HostPair net;
  fault::FaultConfig fc;
  fc.seed = 3;
  fc.loss_probability = 1.0;  // certain loss — but only in the window below
  fc.active_from = sim::SimTime::millis(20);
  fc.active_until = sim::SimTime::millis(20) + sim::SimTime::micros(50);
  fault::FaultInjector inj{&net.sim, fc};
  inj.attach(*net.ab);

  tcp::TcpConfig cfg;
  cfg.min_rto = sim::SimTime::millis(10);
  TrimFlow f{net, gig_trim(), cfg};
  stats::TimeSeries cwnd_trace;
  f.sender.set_cwnd_trace(&cwnd_trace);

  f.sender.write(100 * 1460);  // train 1, before the loss window
  net.sim.run();
  ASSERT_TRUE(f.sender.idle());

  // Train 2 starts exactly inside the loss window: its two probes are the
  // only packets offered there, and both are dropped.
  net.sim.schedule_at(sim::SimTime::millis(20), [&] { f.sender.write(50 * 1460); });
  net.sim.run();

  EXPECT_EQ(inj.stats().random_losses, 2u);
  EXPECT_GE(f.sender.stats().probe_rounds, 1u);
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 150u * 1460);
  // Recovery went through the RTO path, and the window never broke the
  // paper's floor of 2 on the way.
  EXPECT_GE(f.sender.stats().timeouts, 1u);
  EXPECT_GE(cwnd_trace.min_value(), 2.0);
}

// Eq. 1 with a congested probe RTT: probe_RTT > 2 * min_RTT makes the
// tuning expression non-positive, and the implementation must clamp the
// resumed window at exactly the TCP minimum of 2 (Sec. III-C).
TEST(TrimProbeFault, EquationOneClampsAtTwo) {
  HostPair net;
  // Faults on the ACK return path: data packets fly clean, so min_RTT
  // (learned in phase 1) stays at the true ~112 us base RTT.
  fault::FaultInjector inj{&net.sim, fault::FaultConfig{}};
  inj.attach(*net.ba);
  TrimFlow f{net, gig_trim()};

  f.sender.write(200 * 1460);  // phase 1: clean train fixes min_RTT
  net.sim.run();
  const auto min_rtt = f.sender.min_rtt();
  ASSERT_LT(min_rtt, sim::SimTime::micros(150));

  // Phase 2: +2 ms on every ACK inflates smooth_RTT (the probe deadline)
  // to the millisecond range while min_RTT keeps its clean value.
  inj.set_added_delay(sim::SimTime::millis(2));
  net.sim.schedule(sim::SimTime::millis(10), [&] { f.sender.write(100 * 1460); });
  net.sim.run();
  ASSERT_TRUE(f.sender.idle());
  ASSERT_GT(f.sender.smooth_rtt(), sim::SimTime::millis(1));
  ASSERT_EQ(f.sender.min_rtt(), min_rtt);

  // Phase 3: a +300 us probe RTT — comfortably within the inflated
  // deadline (so the ACKs count), but over 2 * min_RTT, so Eq. 1 goes
  // non-positive and the clamp must land on exactly 2.
  inj.set_added_delay(sim::SimTime::micros(300));
  const auto t3 = net.sim.now() + sim::SimTime::millis(10);
  net.sim.schedule_at(t3, [&] { f.sender.write(100 * 1460); });
  double tuned = -1.0;
  bool still_probing = true;
  net.sim.schedule_at(t3 + sim::SimTime::micros(500), [&] {
    tuned = f.sender.cwnd();
    still_probing = f.sender.probing();
  });
  net.sim.run();

  // By +500 us both probe ACKs are back (RTT ~412 us < the ~2 ms deadline,
  // so this is the Eq. 1 path, not the probe-timeout path — probing is
  // over well before the timer would have fired). Eq. 1 clamped the resumed
  // window to 2; the probe ACK's own congestion-avoidance growth can have
  // nudged it up by at most 2 * 1/cwnd since.
  EXPECT_FALSE(still_probing);
  EXPECT_GE(tuned, 2.0);
  EXPECT_LT(tuned, 3.0);
  EXPECT_TRUE(f.sender.idle());
  EXPECT_EQ(f.receiver.delivered_bytes(), 400u * 1460);
  EXPECT_EQ(f.sender.stats().timeouts, 0u);
}

}  // namespace
}  // namespace trim::core
