// Direct conformance tests for TCP-TRIM's Algorithm 2 arithmetic: ACKs
// with hand-crafted timestamp echoes give exact control over the RTT the
// sender observes, so Eq. 2/3 and the smooth-RTT EWMA can be checked to
// the digit (the network-level behavior tests live in trim_sender_test).
#include <gtest/gtest.h>

#include "core/trim_sender.hpp"
#include "../tcp/tcp_test_util.hpp"

namespace trim::core {
namespace {

using test::HostPair;

struct Harness {
  explicit Harness(double initial_cwnd, sim::SimTime k_override) : net{} {
    tcp::TcpConfig cfg;
    cfg.initial_cwnd = initial_cwnd;
    TrimConfig trim;
    trim.k_override = k_override;
    trim.probe_on_gap = false;  // isolate the queue-control path
    sender = std::make_unique<TrimSender>(&net.a, net.b.id(), 1, cfg, trim);
    sender->write(100'000'000);  // plenty of segments to ack
  }

  // Deliver an ACK whose observed RTT is exactly `rtt`.
  void ack_with_rtt(sim::SimTime rtt) {
    net::Packet ack;
    ack.is_ack = true;
    ack.flow = 1;
    ack.seq = next_ack_++;
    ack.ack_of_seq = next_ack_ - 2;
    ack.ts = net.sim.now() - rtt;  // timestamp echo places the send time
    sender->on_packet(ack);
  }

  HostPair net;
  std::unique_ptr<TrimSender> sender;
  tcp::SeqNum next_ack_ = 1;
};

TEST(TrimAlgorithm2, SmoothRttEwmaUsesAlphaQuarter) {
  Harness h{30.0, sim::SimTime::millis(10)};  // K huge: no cuts interfere
  h.ack_with_rtt(sim::SimTime::micros(400));
  EXPECT_EQ(h.sender->smooth_rtt(), sim::SimTime::micros(400));  // first sample
  h.ack_with_rtt(sim::SimTime::micros(800));
  // (1-0.25)*400 + 0.25*800 = 500.
  EXPECT_NEAR(h.sender->smooth_rtt().to_micros(), 500.0, 0.5);
  h.ack_with_rtt(sim::SimTime::micros(100));
  // 0.75*500 + 0.25*100 = 400.
  EXPECT_NEAR(h.sender->smooth_rtt().to_micros(), 400.0, 0.5);
}

TEST(TrimAlgorithm2, MinRttTracksSmallestSample) {
  Harness h{30.0, sim::SimTime::millis(10)};
  h.ack_with_rtt(sim::SimTime::micros(300));
  h.ack_with_rtt(sim::SimTime::micros(120));
  h.ack_with_rtt(sim::SimTime::micros(500));
  EXPECT_EQ(h.sender->min_rtt(), sim::SimTime::micros(120));
}

TEST(TrimAlgorithm2, Equation3CutIsExact) {
  // K = 200 us; an ACK with RTT 300 us gives ep = (300-200)/300 = 1/3
  // (Eq. 2) and cwnd *= (1 - ep/2) = 5/6 (Eq. 3).
  Harness h{30.0, sim::SimTime::micros(200)};
  const double before = h.sender->cwnd();
  h.ack_with_rtt(sim::SimTime::micros(300));
  // The cut applies before the Reno growth of the same ACK (+1 in slow
  // start after ssthresh was pinned to the cut value -> CA: +1/cwnd).
  const double cut = before * (1.0 - (1.0 / 3.0) / 2.0);
  EXPECT_NEAR(h.sender->cwnd(), cut + 1.0 / cut, 1e-6);
  EXPECT_EQ(h.sender->stats().delay_backoffs, 1u);
}

TEST(TrimAlgorithm2, OneCutPerWindowOfData) {
  Harness h{30.0, sim::SimTime::micros(200)};
  h.ack_with_rtt(sim::SimTime::micros(400));  // cut #1
  const auto after_first = h.sender->stats().delay_backoffs;
  EXPECT_EQ(after_first, 1u);
  // More congested ACKs inside the same window of data: no further cuts
  // until the ack counter passes the snd_next recorded at the cut.
  h.ack_with_rtt(sim::SimTime::micros(400));
  h.ack_with_rtt(sim::SimTime::micros(400));
  EXPECT_EQ(h.sender->stats().delay_backoffs, 1u);
  // Push the cumulative ack beyond that window boundary: next cut allowed.
  for (int i = 0; i < 64; ++i) h.ack_with_rtt(sim::SimTime::micros(150));
  h.ack_with_rtt(sim::SimTime::micros(400));
  EXPECT_GE(h.sender->stats().delay_backoffs, 2u);
}

TEST(TrimAlgorithm2, NoCutBelowThreshold) {
  Harness h{30.0, sim::SimTime::micros(200)};
  for (int i = 0; i < 50; ++i) h.ack_with_rtt(sim::SimTime::micros(199));
  EXPECT_EQ(h.sender->stats().delay_backoffs, 0u);
  EXPECT_GT(h.sender->cwnd(), 30.0);  // pure growth
}

TEST(TrimAlgorithm2, WindowFloorIsTwoUnderExtremeRtt) {
  // RTT >> K: ep -> 1, cut factor -> 1/2 per window, floored at 2.
  Harness h{4.0, sim::SimTime::micros(100)};
  for (int i = 0; i < 200; ++i) h.ack_with_rtt(sim::SimTime::millis(50));
  EXPECT_GE(h.sender->cwnd(), 2.0);
  EXPECT_LE(h.sender->cwnd(), 5.0);  // CA growth between per-window cuts
}

}  // namespace
}  // namespace trim::core
