#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "sim/config_error.hpp"
#include "tcp/reno.hpp"
#include "tcp/tcp_receiver.hpp"
#include "../tcp/tcp_test_util.hpp"

namespace trim::fault {
namespace {

using test::HostPair;

net::Packet data_packet(net::NodeId dst, std::uint64_t seq) {
  net::Packet p;
  p.dst = dst;
  p.flow = 999;  // unregistered: dropped (unroutable) at the host, harmless
  p.seq = seq;
  p.payload_bytes = 1460;
  return p;
}

TEST(FaultConfigValidation, RejectsEachMalformedField) {
  {
    FaultConfig cfg;
    cfg.loss_probability = 1.5;
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;
    cfg.gilbert.p_good_to_bad = -0.1;
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;
    cfg.corrupt_probability = 2.0;
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;  // reordering without a hold-back bound
    cfg.reorder_probability = 0.1;
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;
    cfg.jitter_max = sim::SimTime::micros(-5);
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;  // empty outage
    cfg.flaps.push_back({sim::SimTime::seconds(1), sim::SimTime::seconds(1)});
    EXPECT_THROW(validate(cfg), ConfigError);
  }
  {
    FaultConfig cfg;  // overlapping outages
    cfg.flaps.push_back({sim::SimTime::seconds(1), sim::SimTime::seconds(3)});
    cfg.flaps.push_back({sim::SimTime::seconds(2), sim::SimTime::seconds(4)});
    EXPECT_THROW(validate(cfg), ConfigError);
  }
}

TEST(FaultConfigValidation, ErrorCarriesFieldAndRange) {
  FaultConfig cfg;
  cfg.duplicate_probability = 7.0;
  try {
    validate(cfg);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.where(), "FaultConfig::duplicate_probability");
    EXPECT_EQ(e.valid_range(), "[0, 1]");
  }
}

// An attached injector whose profile enables nothing must leave the
// simulation bit-identical: it draws no randomness and schedules no events.
TEST(FaultInjector, DisabledInjectorIsBitIdentical) {
  auto run_transfer = [](bool with_injector) {
    HostPair net;
    std::unique_ptr<FaultInjector> inj;
    if (with_injector) {
      inj = std::make_unique<FaultInjector>(&net.sim, FaultConfig{});
      inj->attach(*net.ab);
    }
    tcp::TcpReceiver receiver{&net.b, 1, net.a.id()};
    tcp::RenoSender sender{&net.a, net.b.id(), 1, tcp::TcpConfig{}};
    sender.write(200 * 1460);
    net.sim.run();
    EXPECT_TRUE(sender.idle());
    auto times = sender.stats().completed_message_times();
    return std::pair{net.sim.now(), times.at(0)};
  };
  const auto clean = run_transfer(false);
  const auto attached = run_transfer(true);
  EXPECT_EQ(clean.first, attached.first);    // same final event time, exactly
  EXPECT_EQ(clean.second, attached.second);  // same completion time, exactly
}

TEST(FaultInjector, BernoulliLossIsSeedDeterministic) {
  auto drop_pattern = [](std::uint64_t seed) {
    HostPair net;
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.loss_probability = 0.3;
    FaultInjector inj{&net.sim, cfg};
    inj.attach(*net.ab);
    std::vector<bool> offered;
    for (std::uint64_t i = 0; i < 200; ++i) {
      offered.push_back(inj.offer(data_packet(net.b.id(), i)));
    }
    return std::pair{offered, inj.stats().random_losses};
  };
  const auto a = drop_pattern(42);
  const auto b = drop_pattern(42);
  const auto c = drop_pattern(43);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);
  EXPECT_NE(a.first, c.first);  // different seed, different pattern
}

// The stream-isolation contract: enabling delivery-side faults (jitter,
// corruption, duplication, reordering) must not perturb the loss stream's
// drop decisions, because each fault class draws from its own RNG.
TEST(FaultInjector, LossStreamUnaffectedByOtherFaults) {
  const std::uint64_t seed = 7;
  auto loss_decisions = [&](bool with_other_faults) {
    HostPair net;
    FaultConfig cfg;
    cfg.seed = seed;
    cfg.loss_probability = 0.25;
    if (with_other_faults) {
      cfg.jitter_max = sim::SimTime::micros(50);
      cfg.corrupt_probability = 0.5;
      cfg.duplicate_probability = 0.5;
      cfg.reorder_probability = 0.5;
      cfg.reorder_extra_max = sim::SimTime::micros(100);
    }
    FaultInjector inj{&net.sim, cfg};
    inj.attach(*net.ab);
    std::vector<bool> decisions;
    for (std::uint64_t i = 0; i < 300; ++i) {
      auto p = data_packet(net.b.id(), i);
      const bool pass = inj.offer(p);
      decisions.push_back(pass);
      if (pass) {
        // Exercise the delivery-side hooks between offers, as the link does.
        (void)inj.on_deliver(p);
        (void)inj.duplicate_now(p);
      }
    }
    return decisions;
  };
  EXPECT_EQ(loss_decisions(false), loss_decisions(true));
}

TEST(FaultInjector, FlapDropsEverythingWhileDown) {
  HostPair net;
  FaultConfig cfg;
  cfg.flaps.push_back({sim::SimTime::millis(1), sim::SimTime::millis(2)});
  FaultInjector inj{&net.sim, cfg};
  inj.attach(*net.ab);

  // One packet before, three during, one after the outage.
  for (auto [at_us, seq] : {std::pair{500, 0}, {1200, 1}, {1500, 2},
                            {1800, 3}, {2500, 4}}) {
    net.sim.schedule_at(sim::SimTime::micros(at_us), [&net, seq = seq] {
      net.ab->send(data_packet(net.b.id(), static_cast<std::uint64_t>(seq)));
    });
  }
  net.sim.run();
  EXPECT_EQ(inj.stats().link_down_drops, 3u);
  EXPECT_EQ(inj.stats().flaps_completed, 1u);
  EXPECT_FALSE(inj.link_down());
  EXPECT_EQ(net.ab->packets_arrived(), 2u);
}

TEST(FaultInjector, DuplicationDeliversTwice) {
  HostPair net;
  FaultConfig cfg;
  cfg.duplicate_probability = 1.0;
  FaultInjector inj{&net.sim, cfg};
  inj.attach(*net.ab);
  for (std::uint64_t i = 0; i < 5; ++i) {
    net.ab->send(data_packet(net.b.id(), i));
  }
  net.sim.run();
  EXPECT_EQ(inj.stats().duplicated, 5u);
  EXPECT_EQ(net.ab->packets_arrived(), 10u);
}

TEST(FaultInjector, CorruptedPacketsAreDroppedAndCountedAtHost) {
  HostPair net;
  FaultConfig cfg;
  cfg.corrupt_probability = 1.0;
  FaultInjector inj{&net.sim, cfg};
  inj.attach(*net.ab);
  for (std::uint64_t i = 0; i < 8; ++i) {
    net.ab->send(data_packet(net.b.id(), i));
  }
  net.sim.run();
  EXPECT_EQ(inj.stats().corrupted, 8u);
  // Corrupt frames traverse the link (consuming bandwidth), then die at
  // the receiving host's checksum counter — before flow dispatch.
  EXPECT_EQ(net.ab->packets_arrived(), 8u);
  EXPECT_EQ(net.b.corrupt_dropped(), 8u);
  EXPECT_EQ(net.b.packets_delivered_to_agent(), 0u);
}

TEST(FaultInjector, ReorderHoldbackIsBounded) {
  HostPair net;  // 50 us propagation
  FaultConfig cfg;
  cfg.reorder_probability = 1.0;
  cfg.reorder_extra_max = sim::SimTime::micros(200);
  FaultInjector inj{&net.sim, cfg};
  inj.attach(*net.ab);
  for (std::uint64_t i = 0; i < 20; ++i) {
    net.ab->send(data_packet(net.b.id(), i));
  }
  net.sim.run();
  EXPECT_EQ(inj.stats().reordered, 20u);
  EXPECT_EQ(net.ab->packets_arrived(), 20u);
  // Every arrival happens by: serialization of 20 packets (payload plus
  // header, at 1 Gbps) + propagation + the hold-back bound. run() ends at
  // the last arrival.
  const auto serialization =
      sim::SimTime::nanos(20 * (1460 + net::kTcpIpHeaderBytes) * 8);
  const auto bound = serialization + sim::SimTime::micros(50) +
                     sim::SimTime::micros(200);
  EXPECT_LE(net.sim.now(), bound);
}

TEST(FaultInjector, RandomFaultsRespectActiveWindow) {
  HostPair net;
  FaultConfig cfg;
  cfg.loss_probability = 1.0;  // drops everything — but only in the window
  cfg.active_from = sim::SimTime::millis(1);
  cfg.active_until = sim::SimTime::millis(2);
  FaultInjector inj{&net.sim, cfg};
  inj.attach(*net.ab);
  for (auto [at_us, seq] : {std::pair{500, 0}, {1500, 1}, {2500, 2}}) {
    net.sim.schedule_at(sim::SimTime::micros(at_us), [&net, seq = seq] {
      net.ab->send(data_packet(net.b.id(), static_cast<std::uint64_t>(seq)));
    });
  }
  net.sim.run();
  EXPECT_EQ(inj.stats().random_losses, 1u);
  EXPECT_EQ(net.ab->packets_arrived(), 2u);
}

TEST(FaultInjector, SecondAttachIsRejected) {
  HostPair net;
  FaultInjector inj{&net.sim, FaultConfig{}};
  inj.attach(*net.ab);
  EXPECT_THROW(inj.attach(*net.ba), ConfigError);
}

}  // namespace
}  // namespace trim::fault
