#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "fault/invariant_checker.hpp"
#include "topo/many_to_one.hpp"

namespace trim::fault {
namespace {

struct Incast {
  explicit Incast(tcp::Protocol protocol, int num_servers = 3) {
    topo::ManyToOneConfig cfg;
    cfg.num_servers = num_servers;
    topo = build_many_to_one(world.network, cfg);
    const auto opts =
        exp::default_options(protocol, cfg.link_bps, sim::SimTime::millis(200));
    for (int i = 0; i < num_servers; ++i) {
      flows.push_back(core::make_protocol_flow(world.network, *topo.servers[i],
                                               *topo.front_end, protocol, opts));
    }
  }

  exp::World world;
  topo::ManyToOne topo;
  std::vector<tcp::Flow> flows;
};

TEST(InvariantChecker, CleanRunsHaveNoViolations) {
  for (auto protocol :
       {tcp::Protocol::kReno, tcp::Protocol::kDctcp, tcp::Protocol::kTrim}) {
    Incast inc{protocol};
    InvariantChecker checker{&inc.world.simulator, &inc.world.network};
    for (auto& f : inc.flows) {
      checker.watch(*f.sender);
      f.sender->write(300 * 1460);
    }
    checker.schedule_checkpoints(sim::SimTime::millis(10),
                                 sim::SimTime::seconds(2));
    inc.world.simulator.run_until(sim::SimTime::seconds(2));
    checker.check_now();
    EXPECT_TRUE(checker.violations().empty())
        << tcp::to_string(protocol) << ": "
        << checker.violations().front().invariant << " — "
        << checker.violations().front().detail;
    EXPECT_GT(checker.checkpoints_run(), 0u);
  }
}

// Mid-flight checkpoints must also balance: packets sitting in queues, on
// the wire, or propagating are counted as in-network, not leaked.
TEST(InvariantChecker, ConservationHoldsMidFlight) {
  Incast inc{tcp::Protocol::kReno, 5};
  InvariantChecker checker{&inc.world.simulator, &inc.world.network};
  for (auto& f : inc.flows) {
    checker.watch(*f.sender);
    f.sender->write(2000 * 1460);
  }
  // Dense grid while the bottleneck queue is full and dropping.
  checker.schedule_checkpoints(sim::SimTime::micros(500),
                               sim::SimTime::millis(50));
  inc.world.simulator.run_until(sim::SimTime::millis(50));
  EXPECT_EQ(checker.checkpoints_run(), 100u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().detail;
}

// A fault injector dropping packets is a legitimate sink only when the
// checker knows about it: unwatched, its drops must surface as a
// conservation leak — that asymmetry is what proves the equation is tight.
TEST(InvariantChecker, UnwatchedInjectorIsAConservationLeak) {
  for (const bool watched : {true, false}) {
    Incast inc{tcp::Protocol::kReno};
    FaultConfig fc;
    fc.seed = 5;
    fc.loss_probability = 0.05;
    FaultInjector inj{&inc.world.simulator, fc};
    inj.attach(*inc.topo.bottleneck);

    InvariantChecker checker{&inc.world.simulator, &inc.world.network};
    if (watched) checker.watch(inj);
    for (auto& f : inc.flows) {
      checker.watch(*f.sender);
      f.sender->write(500 * 1460);
    }
    inc.world.simulator.run_until(sim::SimTime::seconds(3));
    ASSERT_GT(inj.stats().injected_drops(), 0u);  // faults actually fired
    checker.check_now();
    if (watched) {
      EXPECT_TRUE(checker.violations().empty())
          << checker.violations().front().detail;
    } else {
      ASSERT_FALSE(checker.violations().empty());
      EXPECT_EQ(checker.violations().front().invariant, "packet-conservation");
    }
  }
}

TEST(InvariantChecker, WatchedInjectorFaultMatrixStaysConserved) {
  // Every delivery-side fault at once — duplication in particular adds
  // packets the conservation equation must absorb on both sides.
  Incast inc{tcp::Protocol::kTrim};
  FaultConfig fc;
  fc.seed = 9;
  fc.loss_probability = 0.02;
  fc.corrupt_probability = 0.02;
  fc.duplicate_probability = 0.05;
  fc.reorder_probability = 0.02;
  fc.reorder_extra_max = sim::SimTime::micros(100);
  fc.jitter_max = sim::SimTime::micros(20);
  FaultInjector inj{&inc.world.simulator, fc};
  inj.attach(*inc.topo.bottleneck);

  InvariantChecker checker{&inc.world.simulator, &inc.world.network};
  checker.watch(inj);
  for (auto& f : inc.flows) {
    checker.watch(*f.sender);
    f.sender->write(500 * 1460);
  }
  checker.schedule_checkpoints(sim::SimTime::millis(5), sim::SimTime::seconds(3));
  inc.world.simulator.run_until(sim::SimTime::seconds(3));
  checker.check_now();
  EXPECT_GT(inj.stats().duplicated, 0u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().front().invariant << " — "
      << checker.violations().front().detail;
}

TEST(InvariantChecker, CustomCheckReportsWithItsName) {
  Incast inc{tcp::Protocol::kReno};
  InvariantChecker checker{&inc.world.simulator, &inc.world.network};
  int calls = 0;
  checker.add_check("always-fails", [&calls]() -> std::optional<std::string> {
    ++calls;
    return "synthetic violation";
  });
  checker.add_check("always-passes",
                    []() -> std::optional<std::string> { return std::nullopt; });
  checker.check_now();
  checker.check_now();
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(checker.violations().size(), 2u);
  EXPECT_EQ(checker.violations()[0].invariant, "always-fails");
  EXPECT_EQ(checker.violations()[0].detail, "synthetic violation");
}

}  // namespace
}  // namespace trim::fault
