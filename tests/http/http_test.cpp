#include <gtest/gtest.h>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "http/http_app.hpp"
#include "http/lpt_source.hpp"
#include "http/onoff_source.hpp"
#include "http/train_analyzer.hpp"
#include "http/train_workload.hpp"
#include "topo/many_to_one.hpp"

namespace trim::http {
namespace {

// ---------- TrainWorkload ----------

TEST(TrainWorkload, SizesMatchFig2aProportions) {
  TrainWorkload w{sim::Rng{1}};
  int leq_4k = 0, mid = 0, gt_128k = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto bytes = w.sample_train_bytes();
    ASSERT_GE(bytes, 512u);
    ASSERT_LE(bytes, 262144u);
    if (bytes <= 4096) {
      ++leq_4k;
    } else if (bytes <= 131072) {
      ++mid;
    } else {
      ++gt_128k;
    }
  }
  // Paper: <20% tiny, ~70% between 4 and 128 KB, ~10% above 128 KB.
  EXPECT_NEAR(leq_4k / double(n), 0.18, 0.02);
  EXPECT_NEAR(mid / double(n), 0.72, 0.02);
  EXPECT_NEAR(gt_128k / double(n), 0.10, 0.02);
}

TEST(TrainWorkload, GapsSpanFig2bRange) {
  TrainWorkload w{sim::Rng{2}};
  for (int i = 0; i < 5000; ++i) {
    const auto gap = w.sample_gap();
    EXPECT_GE(gap, sim::SimTime::micros(100));
    EXPECT_LE(gap, sim::SimTime::millis(5));
  }
}

TEST(TrainWorkload, LongTrainClassification) {
  EXPECT_FALSE(TrainWorkload::is_long_train(128 * 1024));
  EXPECT_TRUE(TrainWorkload::is_long_train(128 * 1024 + 1));
  EXPECT_FALSE(TrainWorkload::is_long_train(512));
}

TEST(TrainWorkload, DeterministicForSeed) {
  TrainWorkload a{sim::Rng{7}}, b{sim::Rng{7}};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.sample_train_bytes(), b.sample_train_bytes());
  }
}

// ---------- TrainAnalyzer ----------

TEST(TrainAnalyzer, SplitsOnGapThreshold) {
  TrainAnalyzer analyzer{sim::SimTime::micros(100)};
  // Train 1: 3 packets 10 us apart.
  analyzer.observe(sim::SimTime::micros(0), 1460);
  analyzer.observe(sim::SimTime::micros(10), 1460);
  analyzer.observe(sim::SimTime::micros(20), 1460);
  // Gap of 500 us -> new train.
  analyzer.observe(sim::SimTime::micros(520), 700);
  const auto& trains = analyzer.finish();
  ASSERT_EQ(trains.size(), 2u);
  EXPECT_EQ(trains[0].packets, 3u);
  EXPECT_EQ(trains[0].bytes, 3u * 1460);
  EXPECT_EQ(trains[0].duration(), sim::SimTime::micros(20));
  EXPECT_EQ(trains[1].packets, 1u);
}

TEST(TrainAnalyzer, GapExactlyAtThresholdStaysInTrain) {
  TrainAnalyzer analyzer{sim::SimTime::micros(100)};
  analyzer.observe(sim::SimTime::micros(0), 100);
  analyzer.observe(sim::SimTime::micros(100), 100);  // == threshold: same train
  EXPECT_EQ(analyzer.finish().size(), 1u);
}

TEST(TrainAnalyzer, CdfsOverDetectedTrains) {
  TrainAnalyzer analyzer{sim::SimTime::micros(50)};
  for (int t = 0; t < 5; ++t) {
    const auto base = sim::SimTime::millis(t);
    for (int p = 0; p <= t; ++p) analyzer.observe(base + sim::SimTime::micros(p), 1000);
  }
  analyzer.finish();
  const auto sizes = analyzer.size_cdf();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_DOUBLE_EQ(sizes.min(), 1000.0);
  EXPECT_DOUBLE_EQ(sizes.max(), 5000.0);
  const auto gaps = analyzer.gap_cdf();
  EXPECT_EQ(gaps.size(), 4u);  // n-1 gaps
}

TEST(TrainAnalyzer, RejectsOutOfOrderAndLateObserve) {
  TrainAnalyzer analyzer{sim::SimTime::micros(50)};
  analyzer.observe(sim::SimTime::micros(10), 1);
  EXPECT_THROW(analyzer.observe(sim::SimTime::micros(5), 1), std::invalid_argument);
  analyzer.finish();
  EXPECT_THROW(analyzer.observe(sim::SimTime::micros(20), 1), std::logic_error);
  EXPECT_THROW(TrainAnalyzer{sim::SimTime::zero()}, std::invalid_argument);
}

// ---------- apps over a real network ----------

struct AppWorld {
  AppWorld() {
    topo::ManyToOneConfig cfg;
    cfg.num_servers = 1;
    topo = build_many_to_one(world.network, cfg);
    flow = core::make_protocol_flow(world.network, *topo.servers[0], *topo.front_end,
                                    tcp::Protocol::kReno, core::ProtocolOptions{});
  }
  exp::World world;
  topo::ManyToOne topo;
  tcp::Flow flow;
};

TEST(HttpResponseApp, SchedulesAndCompletesResponses) {
  AppWorld w;
  HttpResponseApp app{&w.world.simulator, w.flow.sender.get()};
  app.schedule_response(sim::SimTime::millis(1), 5000);
  app.schedule_response(sim::SimTime::millis(2), 7000);
  w.world.simulator.run_until(sim::SimTime::seconds(1));
  EXPECT_EQ(app.scheduled(), 2u);
  EXPECT_EQ(app.completed(), 2u);
  const auto summary = app.completion_summary_ms();
  EXPECT_EQ(summary.count(), 2u);
  EXPECT_LT(summary.max(), 5.0);  // small responses on an idle gigabit path
}

TEST(OnOffSource, OpenLoopEmitsTrainsInWindow) {
  AppWorld w;
  OnOffSource source{&w.world.simulator, w.flow.sender.get(),
                     TrainWorkload{sim::Rng{3}}, OnOffSource::Pacing::kOpenLoop};
  source.run(sim::SimTime::millis(10), sim::SimTime::millis(60));
  w.world.simulator.run_until(sim::SimTime::seconds(2));
  EXPECT_GT(source.trains_emitted(), 5u);
  EXPECT_EQ(w.flow.receiver->delivered_bytes(), source.bytes_emitted());
}

TEST(OnOffSource, ClosedLoopSerializesTrains) {
  AppWorld w;
  OnOffSource source{&w.world.simulator, w.flow.sender.get(),
                     TrainWorkload{sim::Rng{4}},
                     OnOffSource::Pacing::kAfterCompletion};
  source.run(sim::SimTime::millis(1), sim::SimTime::millis(100));
  w.world.simulator.run_until(sim::SimTime::seconds(2));
  EXPECT_GT(source.trains_emitted(), 3u);
  EXPECT_TRUE(w.flow.sender->idle());
  EXPECT_EQ(w.flow.sender->stats().incomplete_messages(), 0u);
}

TEST(LptSource, KeepsConnectionBackloggedUntilStop) {
  AppWorld w;
  LptSource source{&w.world.simulator, w.flow.sender.get(), 64 * 1024};
  source.run(sim::SimTime::millis(1), sim::SimTime::millis(50));
  w.world.simulator.run_until(sim::SimTime::seconds(2));
  EXPECT_TRUE(w.flow.sender->idle());
  // ~1 Gbps for ~49 ms is several MB.
  EXPECT_GT(source.bytes_emitted(), 2'000'000u);
  EXPECT_EQ(w.flow.receiver->delivered_bytes(), source.bytes_emitted());
}

TEST(LptSource, CannotRunTwice) {
  AppWorld w;
  LptSource source{&w.world.simulator, w.flow.sender.get()};
  source.run(sim::SimTime::millis(1), sim::SimTime::millis(2));
  EXPECT_THROW(source.run(sim::SimTime::millis(3), sim::SimTime::millis(4)),
               std::logic_error);
}

}  // namespace
}  // namespace trim::http
