#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "http/trace_io.hpp"

namespace trim::http {
namespace {

std::vector<TrainRecord> synthetic_trains(int n) {
  std::vector<TrainRecord> trains;
  sim::SimTime t = sim::SimTime::millis(1);
  for (int i = 0; i < n; ++i) {
    TrainRecord rec;
    rec.first_packet = t;
    rec.last_packet = t + sim::SimTime::micros(50 + i);
    rec.bytes = 4096 + static_cast<std::uint64_t>(i) * 3000;
    rec.packets = static_cast<std::uint32_t>(1 + i);
    trains.push_back(rec);
    t = rec.last_packet + sim::SimTime::micros(200 + 10 * i);
  }
  return trains;
}

TEST(TraceIo, RoundTripPreservesDistributionRange) {
  const auto trains = synthetic_trains(50);
  const std::string path = ::testing::TempDir() + "/trains_test.csv";
  write_train_trace(path, trains);

  auto workload = load_train_workload(path, sim::Rng{3});
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = workload.sample_train_bytes();
    EXPECT_GE(bytes, 4096u);
    EXPECT_LE(bytes, 4096u + 49u * 3000u + 1);
    const auto gap = workload.sample_gap();
    EXPECT_GE(gap, sim::SimTime::micros(199));
    EXPECT_LE(gap, sim::SimTime::micros(692));
  }
  std::remove(path.c_str());
}

TEST(TraceIo, FileFormatIsStable) {
  const auto trains = synthetic_trains(3);
  const std::string path = ::testing::TempDir() + "/trains_fmt.csv";
  write_train_trace(path, trains);
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "train_bytes,gap_us");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 5), "4096,");  // first train, gap 0
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingAndShortFiles) {
  EXPECT_THROW(load_train_workload("/no/such/file.csv", sim::Rng{1}),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "/trains_short.csv";
  write_train_trace(path, synthetic_trains(2));
  EXPECT_THROW(load_train_workload(path, sim::Rng{1}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, MalformedLineThrows) {
  const std::string path = ::testing::TempDir() + "/trains_bad.csv";
  {
    std::ofstream out{path};
    out << "train_bytes,gap_us\nnot-a-number\n";
  }
  EXPECT_THROW(load_train_workload(path, sim::Rng{1}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EmpiricalFromSamples, QuantilesTrackSampleQuantiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) samples.push_back(i);
  const auto cdf = sim::EmpiricalCdf::from_samples(samples, 21);
  EXPECT_NEAR(cdf.quantile(0.5), 500.0, 30.0);
  EXPECT_NEAR(cdf.quantile(0.95), 950.0, 30.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_THROW(sim::EmpiricalCdf::from_samples({1.0}, 5), std::invalid_argument);
}

TEST(EmpiricalFromSamples, HandlesConstantSamples) {
  // All-equal samples: anchors are nudged apart; sampling returns ~value.
  std::vector<double> samples(100, 42.0);
  const auto cdf = sim::EmpiricalCdf::from_samples(samples, 9);
  sim::Rng rng{4};
  for (int i = 0; i < 100; ++i) EXPECT_NEAR(cdf.sample(rng), 42.0, 1e-6);
}

}  // namespace
}  // namespace trim::http
