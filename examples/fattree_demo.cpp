// Fat-tree walkthrough: build a k-ary fat-tree, run random pairwise
// traffic over TCP-TRIM, and show the ECMP spread across core switches
// plus per-transfer completion statistics.
//
//   $ ./build/examples/fattree_demo [k]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "stats/summary.hpp"
#include "topo/fat_tree.hpp"

using namespace trim;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;

  exp::World world;
  topo::FatTreeConfig cfg;
  cfg.k = k;
  const auto topo = build_fat_tree(world.network, cfg);
  std::printf("fat-tree k=%d: %zu hosts, %zu edge + %zu agg + %zu core switches\n",
              k, topo.hosts.size(), topo.edge_switches.size(),
              topo.agg_switches.size(), topo.core_switches.size());

  const auto opts =
      exp::default_options(tcp::Protocol::kTrim, cfg.link_bps, sim::SimTime::millis(200));

  // Random permutation traffic: host i sends 2 MB to a random other host.
  sim::Rng rng{99};
  const int n = static_cast<int>(topo.hosts.size());
  std::vector<tcp::Flow> flows;
  for (int i = 0; i < n; ++i) {
    int dst = static_cast<int>(rng.uniform_int(0, n - 2));
    if (dst >= i) ++dst;
    flows.push_back(core::make_protocol_flow(world.network, *topo.hosts[i],
                                             *topo.hosts[dst], tcp::Protocol::kTrim,
                                             opts));
    flows.back().sender->write(2 << 20);
  }
  world.simulator.run_until(sim::SimTime::seconds(10));

  stats::Summary completion_ms;
  std::uint64_t timeouts = 0;
  for (const auto& flow : flows) {
    timeouts += flow.sender->stats().timeouts;
    for (const auto& t : flow.sender->stats().completed_message_times()) {
      completion_ms.add(t.to_millis());
    }
  }
  std::printf("\n%llu/%d transfers done: mean %.2f ms, max %.2f ms, "
              "%llu timeouts, %llu drops network-wide\n",
              static_cast<unsigned long long>(completion_ms.count()), n,
              completion_ms.mean(), completion_ms.max(),
              static_cast<unsigned long long>(timeouts),
              static_cast<unsigned long long>(world.network.total_drops()));

  std::printf("\nECMP spread over the %zu core switches (packets forwarded):\n",
              topo.core_switches.size());
  for (std::size_t i = 0; i < topo.core_switches.size(); ++i) {
    std::printf("  core%-2zu %8llu\n", i,
                static_cast<unsigned long long>(topo.core_switches[i]->forwarded_packets()));
  }
  return 0;
}
