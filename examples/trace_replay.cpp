// Trace record & replay: capture the packet-train structure of a live
// simulated connection, persist it as a CSV trace, then drive a brand-new
// experiment from that trace instead of the analytic Fig. 2 distributions
// — the workflow you would use with a real capture in place of the paper's
// (unavailable) campus trace.
//
//   $ ./build/examples/trace_replay [trace.csv]
#include <cstdio>
#include <string>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "http/onoff_source.hpp"
#include "http/trace_io.hpp"
#include "http/train_analyzer.hpp"
#include "stats/summary.hpp"
#include "topo/many_to_one.hpp"

using namespace trim;

namespace {

// Run one ON/OFF connection with `workload`; returns the detected trains.
std::vector<http::TrainRecord> record_phase(http::TrainWorkload workload) {
  exp::World world;
  topo::ManyToOneConfig topo_cfg;
  topo_cfg.num_servers = 1;
  const auto topo = build_many_to_one(world.network, topo_cfg);
  auto flow = core::make_protocol_flow(world.network, *topo.servers[0],
                                       *topo.front_end, tcp::Protocol::kTrim,
                                       exp::default_options(tcp::Protocol::kTrim,
                                                            topo_cfg.link_bps,
                                                            sim::SimTime::millis(200)));
  http::TrainAnalyzer analyzer{sim::SimTime::micros(300)};
  flow.receiver->set_deliver_callback([&](std::uint64_t bytes) {
    analyzer.observe(world.simulator.now(), static_cast<std::uint32_t>(bytes));
  });
  http::OnOffSource source{&world.simulator, flow.sender.get(), std::move(workload),
                           http::OnOffSource::Pacing::kAfterCompletion};
  source.run(sim::SimTime::millis(1), sim::SimTime::millis(800));
  world.simulator.run_until(sim::SimTime::seconds(3));
  return analyzer.finish();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/trim_trace.csv";

  // Phase 1: record — drive a connection from the paper's analytic
  // distributions and capture what actually appeared on the wire.
  std::printf("phase 1: recording a trace from the Fig. 2 analytic workload...\n");
  const auto trains = record_phase(http::TrainWorkload{sim::Rng{2016}});
  http::write_train_trace(path, trains);
  std::printf("  %zu trains written to %s\n\n", trains.size(), path.c_str());

  // Phase 2: replay — rebuild the workload from the file and rerun.
  std::printf("phase 2: replaying the recorded trace...\n");
  auto replayed = http::load_train_workload(path, sim::Rng{7});
  const auto replay_trains = record_phase(std::move(replayed));

  auto summarize = [](const std::vector<http::TrainRecord>& ts) {
    stats::Summary kb;
    for (const auto& t : ts) kb.add(static_cast<double>(t.bytes) / 1024.0);
    return kb;
  };
  const auto orig = summarize(trains);
  const auto rep = summarize(replay_trains);
  std::printf("  original: %llu trains, mean %.1f KB (%.1f..%.1f)\n",
              static_cast<unsigned long long>(orig.count()), orig.mean(), orig.min(),
              orig.max());
  std::printf("  replayed: %llu trains, mean %.1f KB (%.1f..%.1f)\n",
              static_cast<unsigned long long>(rep.count()), rep.mean(), rep.min(),
              rep.max());
  std::printf("\nthe replayed run reproduces the recorded trace's train-size\n"
              "distribution; swap in a CSV from a real capture to drive every\n"
              "experiment with production traffic.\n");
  return 0;
}
