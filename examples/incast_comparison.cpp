// Protocol shoot-out on the incast workload the paper motivates: N warm
// persistent connections burst short responses into one front-end while
// two long trains hog the bottleneck. All five protocols, one table.
//
//   $ ./build/examples/incast_comparison [num_spt_servers]
#include <cstdio>
#include <cstdlib>

#include "exp/concurrency_scenario.hpp"
#include "exp/experiment.hpp"
#include "stats/table.hpp"

using namespace trim;

int main(int argc, char** argv) {
  const int spts = argc > 1 ? std::atoi(argv[1]) : 8;
  std::printf("incast: %d short-train servers + 2 long trains -> 1 front-end\n\n",
              spts);

  stats::Table table{{"protocol", "SPT ACT (ms)", "min (ms)", "max (ms)",
                      "timeouts", "completed"}};
  for (auto protocol : {tcp::Protocol::kReno, tcp::Protocol::kCubic,
                        tcp::Protocol::kDctcp, tcp::Protocol::kL2dct,
                        tcp::Protocol::kTrim}) {
    exp::ConcurrencyConfig cfg;
    cfg.protocol = protocol;
    cfg.num_spt_servers = spts;
    cfg.num_lpt_servers = 2;
    cfg.seed = 2016;
    const auto r = run_concurrency(cfg);
    table.add_row({tcp::to_string(protocol), stats::Table::num(r.act_ms, 2),
                   stats::Table::num(r.min_ms, 2), stats::Table::num(r.max_ms, 2),
                   stats::Table::integer(static_cast<long long>(r.spt_timeouts)),
                   stats::Table::integer(r.completed_spts) + "/" +
                       stats::Table::integer(r.total_spts)});
  }
  table.print();
  std::printf(
      "\nNote: DCTCP and L2DCT get ECN-marking switches here (their deployment\n"
      "requirement); TCP, CUBIC and TCP-TRIM run on plain droptail switches.\n"
      "TRIM's advantage is achieving the low tail *without* switch support.\n");
  return 0;
}
