// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 5-server many-to-one data-center pod, runs the same synchronized
// incast twice — once over legacy TCP (Reno) and once over TCP-TRIM — and
// prints what the paper's Sec. II calls the impairment: drops and timeouts
// that TRIM's probing + delay control remove.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "topo/many_to_one.hpp"

using namespace trim;

int main() {
  for (auto protocol : {tcp::Protocol::kReno, tcp::Protocol::kTrim}) {
    // 1. One Simulator + Network pair is one isolated simulated world.
    exp::World world;

    // 2. Topology: 5 servers -> switch (100-pkt droptail) -> front-end,
    //    1 Gbps / 50 us links (the paper's reference pod).
    topo::ManyToOneConfig topo_cfg;
    topo_cfg.num_servers = 5;
    const auto topo = build_many_to_one(world.network, topo_cfg);

    // 3. Protocol options. TRIM needs its Eq. 22 capacity (the NIC rate).
    const auto opts = exp::default_options(protocol, topo_cfg.link_bps,
                                           sim::SimTime::millis(200));

    // 4. One persistent connection per server, each sending 1 MB at t=0:
    //    a synchronized partition/aggregation response burst.
    std::vector<tcp::Flow> flows;
    for (auto* server : topo.servers) {
      flows.push_back(core::make_protocol_flow(world.network, *server,
                                               *topo.front_end, protocol, opts));
      flows.back().sender->write(1 << 20);
    }

    // 5. Run and inspect.
    world.simulator.run_until(sim::SimTime::seconds(10));

    std::uint64_t timeouts = 0;
    sim::SimTime last_done;
    for (const auto& flow : flows) {
      timeouts += flow.sender->stats().timeouts;
      for (const auto& t : flow.sender->stats().completed_message_times()) {
        last_done = std::max(last_done, t);
      }
    }
    std::printf("%-8s: 5x1MB incast finished in %6.1f ms, %llu drops, %llu timeouts\n",
                tcp::to_string(protocol).c_str(), last_done.to_millis(),
                static_cast<unsigned long long>(world.network.total_drops()),
                static_cast<unsigned long long>(timeouts));
  }
  std::printf("\nTCP-TRIM turns the lossy incast into a clean, timeout-free transfer.\n");
  return 0;
}
