// HTTP ON/OFF demo: a persistent connection carrying packet trains drawn
// from the paper's Fig. 2 distributions, with TCP-TRIM's probe machinery
// visible in the flow statistics, and the train structure recovered by the
// TrainAnalyzer at the receiver.
//
//   $ ./build/examples/http_onoff_demo
#include <cstdio>

#include "core/sender_factory.hpp"
#include "exp/experiment.hpp"
#include "http/onoff_source.hpp"
#include "http/train_analyzer.hpp"
#include "stats/summary.hpp"
#include "topo/many_to_one.hpp"

using namespace trim;

int main() {
  exp::World world;
  topo::ManyToOneConfig topo_cfg;
  topo_cfg.num_servers = 1;
  const auto topo = build_many_to_one(world.network, topo_cfg);

  const auto opts = exp::default_options(tcp::Protocol::kTrim, topo_cfg.link_bps,
                                         sim::SimTime::millis(200));
  auto flow = core::make_protocol_flow(world.network, *topo.servers[0],
                                       *topo.front_end, tcp::Protocol::kTrim, opts);

  // Receiver-side train detection (Jain & Routhier style, as in Fig. 1).
  http::TrainAnalyzer analyzer{sim::SimTime::micros(300)};
  flow.receiver->set_deliver_callback([&](std::uint64_t bytes) {
    analyzer.observe(world.simulator.now(), static_cast<std::uint32_t>(bytes));
  });

  // ON/OFF source: next train starts one sampled gap after the previous
  // train is fully acked (persistent HTTP request/response pacing).
  http::OnOffSource source{&world.simulator, flow.sender.get(),
                           http::TrainWorkload{sim::Rng{2016}},
                           http::OnOffSource::Pacing::kAfterCompletion};
  source.run(sim::SimTime::millis(1), sim::SimTime::millis(500));
  world.simulator.run_until(sim::SimTime::seconds(3));

  const auto& trains = analyzer.finish();
  std::printf("emitted %llu trains (%.1f MB total) on one persistent connection\n",
              static_cast<unsigned long long>(source.trains_emitted()),
              static_cast<double>(source.bytes_emitted()) / 1e6);
  std::printf("receiver reassembled %zu trains\n", trains.size());

  const auto& st = flow.sender->stats();
  std::printf("\nTCP-TRIM internals over this ON/OFF stream:\n");
  std::printf("  probe rounds (Algorithm 1 gap detections): %llu\n",
              static_cast<unsigned long long>(st.probe_rounds));
  std::printf("  delay-based window reductions (Eq. 3):     %llu\n",
              static_cast<unsigned long long>(st.delay_backoffs));
  std::printf("  retransmissions / timeouts:                %llu / %llu\n",
              static_cast<unsigned long long>(st.retransmitted_packets),
              static_cast<unsigned long long>(st.timeouts));

  // Completion time per train: the application-visible metric.
  stats::Summary act;
  for (const auto& t : st.completed_message_times()) act.add(t.to_millis());
  if (!act.empty()) {
    std::printf("  train completion: mean %.2f ms, min %.2f, max %.2f (n=%llu)\n",
                act.mean(), act.min(), act.max(),
                static_cast<unsigned long long>(act.count()));
  }
  return 0;
}
