// trim_trace — convert TRACE_*.jsonl flight-recorder/span dumps into one
// Chrome trace-event JSON file loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Usage:
//   trim_trace [-o OUT.json] TRACE_a.jsonl [TRACE_b.jsonl ...]
//
// Each input file becomes one process (pid) in the trace, named after the
// file; per-flow spans land on tid = flow id so a flow's lifecycle
// (handshake -> slow-start -> probe/RTO episodes -> time-wait) reads as one
// track. Writes to stdout when -o is omitted.
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_export.hpp"

namespace {

bool read_file(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// "bench_out/TRACE_shard0_3.jsonl" -> "TRACE_shard0_3" (the pid label).
std::string basename_no_ext(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o OUT.json] TRACE_a.jsonl [TRACE_b.jsonl ...]\n"
               "Converts TRIM_TRACE dumps to Chrome trace-event JSON "
               "(open in Perfetto or chrome://tracing).\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = nullptr;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      return usage(argv[0]);
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<std::pair<std::string, std::vector<trim::obs::TraceLine>>> docs;
  std::size_t total_lines = 0;
  for (const char* path : inputs) {
    std::string text;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "trim_trace: cannot read %s\n", path);
      return 1;
    }
    auto lines = trim::obs::parse_trace_jsonl(text);
    total_lines += lines.size();
    docs.emplace_back(basename_no_ext(path), std::move(lines));
  }
  if (total_lines == 0) {
    std::fprintf(stderr, "trim_trace: no parseable span/event lines in %zu "
                 "input file(s)\n", docs.size());
    return 1;
  }

  const std::string json = trim::obs::to_chrome_trace(docs);
  std::FILE* out = out_path != nullptr ? std::fopen(out_path, "w") : stdout;
  if (out == nullptr) {
    std::fprintf(stderr, "trim_trace: cannot write %s\n", out_path);
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  if (out != stdout) {
    std::fclose(out);
    std::fprintf(stderr, "trim_trace: wrote %s (%zu files, %zu lines)\n",
                 out_path, docs.size(), total_lines);
  }
  return 0;
}
