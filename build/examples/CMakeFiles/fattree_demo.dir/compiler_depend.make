# Empty compiler generated dependencies file for fattree_demo.
# This may be replaced when dependencies are built.
