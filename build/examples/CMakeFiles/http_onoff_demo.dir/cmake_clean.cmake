file(REMOVE_RECURSE
  "CMakeFiles/http_onoff_demo.dir/http_onoff_demo.cpp.o"
  "CMakeFiles/http_onoff_demo.dir/http_onoff_demo.cpp.o.d"
  "http_onoff_demo"
  "http_onoff_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_onoff_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
