# Empty dependencies file for http_onoff_demo.
# This may be replaced when dependencies are built.
