# Empty compiler generated dependencies file for incast_comparison.
# This may be replaced when dependencies are built.
