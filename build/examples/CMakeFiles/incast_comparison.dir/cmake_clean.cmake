file(REMOVE_RECURSE
  "CMakeFiles/incast_comparison.dir/incast_comparison.cpp.o"
  "CMakeFiles/incast_comparison.dir/incast_comparison.cpp.o.d"
  "incast_comparison"
  "incast_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incast_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
