file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_testbed.dir/bench/bench_fig13_testbed.cpp.o"
  "CMakeFiles/bench_fig13_testbed.dir/bench/bench_fig13_testbed.cpp.o.d"
  "bench/bench_fig13_testbed"
  "bench/bench_fig13_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
