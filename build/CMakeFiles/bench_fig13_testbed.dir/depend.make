# Empty dependencies file for bench_fig13_testbed.
# This may be replaced when dependencies are built.
