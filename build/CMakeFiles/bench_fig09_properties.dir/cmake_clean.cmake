file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_properties.dir/bench/bench_fig09_properties.cpp.o"
  "CMakeFiles/bench_fig09_properties.dir/bench/bench_fig09_properties.cpp.o.d"
  "bench/bench_fig09_properties"
  "bench/bench_fig09_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
