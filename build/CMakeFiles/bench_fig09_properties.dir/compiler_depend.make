# Empty compiler generated dependencies file for bench_fig09_properties.
# This may be replaced when dependencies are built.
