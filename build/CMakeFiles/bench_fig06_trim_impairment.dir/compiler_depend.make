# Empty compiler generated dependencies file for bench_fig06_trim_impairment.
# This may be replaced when dependencies are built.
