file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_trim_impairment.dir/bench/bench_fig06_trim_impairment.cpp.o"
  "CMakeFiles/bench_fig06_trim_impairment.dir/bench/bench_fig06_trim_impairment.cpp.o.d"
  "bench/bench_fig06_trim_impairment"
  "bench/bench_fig06_trim_impairment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_trim_impairment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
