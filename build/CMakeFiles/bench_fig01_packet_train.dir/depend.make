# Empty dependencies file for bench_fig01_packet_train.
# This may be replaced when dependencies are built.
