file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_packet_train.dir/bench/bench_fig01_packet_train.cpp.o"
  "CMakeFiles/bench_fig01_packet_train.dir/bench/bench_fig01_packet_train.cpp.o.d"
  "bench/bench_fig01_packet_train"
  "bench/bench_fig01_packet_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_packet_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
