file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_multihop.dir/bench/bench_fig11_multihop.cpp.o"
  "CMakeFiles/bench_fig11_multihop.dir/bench/bench_fig11_multihop.cpp.o.d"
  "bench/bench_fig11_multihop"
  "bench/bench_fig11_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
