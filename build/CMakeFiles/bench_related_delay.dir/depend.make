# Empty dependencies file for bench_related_delay.
# This may be replaced when dependencies are built.
