file(REMOVE_RECURSE
  "CMakeFiles/bench_related_delay.dir/bench/bench_related_delay.cpp.o"
  "CMakeFiles/bench_related_delay.dir/bench/bench_related_delay.cpp.o.d"
  "bench/bench_related_delay"
  "bench/bench_related_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
