# Empty dependencies file for bench_incast_collapse.
# This may be replaced when dependencies are built.
