file(REMOVE_RECURSE
  "CMakeFiles/bench_incast_collapse.dir/bench/bench_incast_collapse.cpp.o"
  "CMakeFiles/bench_incast_collapse.dir/bench/bench_incast_collapse.cpp.o.d"
  "bench/bench_incast_collapse"
  "bench/bench_incast_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incast_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
