file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_concurrency_trim.dir/bench/bench_fig07_concurrency_trim.cpp.o"
  "CMakeFiles/bench_fig07_concurrency_trim.dir/bench/bench_fig07_concurrency_trim.cpp.o.d"
  "bench/bench_fig07_concurrency_trim"
  "bench/bench_fig07_concurrency_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_concurrency_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
