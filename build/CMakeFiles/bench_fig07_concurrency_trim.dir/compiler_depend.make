# Empty compiler generated dependencies file for bench_fig07_concurrency_trim.
# This may be replaced when dependencies are built.
