file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_fattree.dir/bench/bench_fig12_fattree.cpp.o"
  "CMakeFiles/bench_fig12_fattree.dir/bench/bench_fig12_fattree.cpp.o.d"
  "bench/bench_fig12_fattree"
  "bench/bench_fig12_fattree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
