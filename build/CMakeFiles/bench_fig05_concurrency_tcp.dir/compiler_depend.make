# Empty compiler generated dependencies file for bench_fig05_concurrency_tcp.
# This may be replaced when dependencies are built.
