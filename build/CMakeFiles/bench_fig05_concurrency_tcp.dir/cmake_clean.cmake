file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_concurrency_tcp.dir/bench/bench_fig05_concurrency_tcp.cpp.o"
  "CMakeFiles/bench_fig05_concurrency_tcp.dir/bench/bench_fig05_concurrency_tcp.cpp.o.d"
  "bench/bench_fig05_concurrency_tcp"
  "bench/bench_fig05_concurrency_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_concurrency_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
