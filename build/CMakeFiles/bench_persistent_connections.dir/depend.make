# Empty dependencies file for bench_persistent_connections.
# This may be replaced when dependencies are built.
