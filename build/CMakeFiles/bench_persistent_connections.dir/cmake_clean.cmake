file(REMOVE_RECURSE
  "CMakeFiles/bench_persistent_connections.dir/bench/bench_persistent_connections.cpp.o"
  "CMakeFiles/bench_persistent_connections.dir/bench/bench_persistent_connections.cpp.o.d"
  "bench/bench_persistent_connections"
  "bench/bench_persistent_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_persistent_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
