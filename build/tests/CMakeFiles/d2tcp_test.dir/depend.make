# Empty dependencies file for d2tcp_test.
# This may be replaced when dependencies are built.
