file(REMOVE_RECURSE
  "CMakeFiles/d2tcp_test.dir/tcp/d2tcp_test.cpp.o"
  "CMakeFiles/d2tcp_test.dir/tcp/d2tcp_test.cpp.o.d"
  "d2tcp_test"
  "d2tcp_test.pdb"
  "d2tcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
