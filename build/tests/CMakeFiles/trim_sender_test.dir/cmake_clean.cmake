file(REMOVE_RECURSE
  "CMakeFiles/trim_sender_test.dir/core/trim_sender_test.cpp.o"
  "CMakeFiles/trim_sender_test.dir/core/trim_sender_test.cpp.o.d"
  "trim_sender_test"
  "trim_sender_test.pdb"
  "trim_sender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_sender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
