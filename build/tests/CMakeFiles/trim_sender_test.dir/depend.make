# Empty dependencies file for trim_sender_test.
# This may be replaced when dependencies are built.
