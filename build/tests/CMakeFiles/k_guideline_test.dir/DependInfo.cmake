
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/k_guideline_test.cpp" "tests/CMakeFiles/k_guideline_test.dir/core/k_guideline_test.cpp.o" "gcc" "tests/CMakeFiles/k_guideline_test.dir/core/k_guideline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
