# Empty dependencies file for k_guideline_test.
# This may be replaced when dependencies are built.
