file(REMOVE_RECURSE
  "CMakeFiles/k_guideline_test.dir/core/k_guideline_test.cpp.o"
  "CMakeFiles/k_guideline_test.dir/core/k_guideline_test.cpp.o.d"
  "k_guideline_test"
  "k_guideline_test.pdb"
  "k_guideline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_guideline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
