# Empty compiler generated dependencies file for trim_algorithm_test.
# This may be replaced when dependencies are built.
