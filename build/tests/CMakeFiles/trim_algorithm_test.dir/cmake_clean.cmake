file(REMOVE_RECURSE
  "CMakeFiles/trim_algorithm_test.dir/core/trim_algorithm_test.cpp.o"
  "CMakeFiles/trim_algorithm_test.dir/core/trim_algorithm_test.cpp.o.d"
  "trim_algorithm_test"
  "trim_algorithm_test.pdb"
  "trim_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
