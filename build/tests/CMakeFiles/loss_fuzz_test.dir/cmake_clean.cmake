file(REMOVE_RECURSE
  "CMakeFiles/loss_fuzz_test.dir/property/loss_fuzz_test.cpp.o"
  "CMakeFiles/loss_fuzz_test.dir/property/loss_fuzz_test.cpp.o.d"
  "loss_fuzz_test"
  "loss_fuzz_test.pdb"
  "loss_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
