# Empty dependencies file for loss_fuzz_test.
# This may be replaced when dependencies are built.
