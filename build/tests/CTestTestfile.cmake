# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/time_test[1]_include.cmake")
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/flow_stats_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/rtt_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_sender_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_transfer_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/k_guideline_test[1]_include.cmake")
include("/root/repo/build/tests/trim_sender_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/red_queue_test[1]_include.cmake")
include("/root/repo/build/tests/d2tcp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_csv_test[1]_include.cmake")
include("/root/repo/build/tests/loss_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/trim_algorithm_test[1]_include.cmake")
