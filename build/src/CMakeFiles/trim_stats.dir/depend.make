# Empty dependencies file for trim_stats.
# This may be replaced when dependencies are built.
