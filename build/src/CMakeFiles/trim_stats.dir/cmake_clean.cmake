file(REMOVE_RECURSE
  "CMakeFiles/trim_stats.dir/stats/cdf.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/cdf.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/csv.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/csv.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/flow_stats.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/flow_stats.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/rate_meter.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/rate_meter.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/summary.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/table.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/table.cpp.o.d"
  "CMakeFiles/trim_stats.dir/stats/time_series.cpp.o"
  "CMakeFiles/trim_stats.dir/stats/time_series.cpp.o.d"
  "libtrim_stats.a"
  "libtrim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
