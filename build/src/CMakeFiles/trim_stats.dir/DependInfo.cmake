
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/cdf.cpp" "src/CMakeFiles/trim_stats.dir/stats/cdf.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/cdf.cpp.o.d"
  "/root/repo/src/stats/csv.cpp" "src/CMakeFiles/trim_stats.dir/stats/csv.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/csv.cpp.o.d"
  "/root/repo/src/stats/flow_stats.cpp" "src/CMakeFiles/trim_stats.dir/stats/flow_stats.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/flow_stats.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/trim_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/rate_meter.cpp" "src/CMakeFiles/trim_stats.dir/stats/rate_meter.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/rate_meter.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/trim_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/trim_stats.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/table.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/CMakeFiles/trim_stats.dir/stats/time_series.cpp.o" "gcc" "src/CMakeFiles/trim_stats.dir/stats/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
