file(REMOVE_RECURSE
  "libtrim_stats.a"
)
