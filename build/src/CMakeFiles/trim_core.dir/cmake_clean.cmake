file(REMOVE_RECURSE
  "CMakeFiles/trim_core.dir/core/k_guideline.cpp.o"
  "CMakeFiles/trim_core.dir/core/k_guideline.cpp.o.d"
  "CMakeFiles/trim_core.dir/core/sender_factory.cpp.o"
  "CMakeFiles/trim_core.dir/core/sender_factory.cpp.o.d"
  "CMakeFiles/trim_core.dir/core/trim_sender.cpp.o"
  "CMakeFiles/trim_core.dir/core/trim_sender.cpp.o.d"
  "libtrim_core.a"
  "libtrim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
