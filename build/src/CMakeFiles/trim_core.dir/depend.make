# Empty dependencies file for trim_core.
# This may be replaced when dependencies are built.
