file(REMOVE_RECURSE
  "libtrim_core.a"
)
