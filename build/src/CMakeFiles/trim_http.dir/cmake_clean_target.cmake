file(REMOVE_RECURSE
  "libtrim_http.a"
)
