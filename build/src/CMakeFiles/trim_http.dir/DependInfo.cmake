
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/http_app.cpp" "src/CMakeFiles/trim_http.dir/http/http_app.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/http_app.cpp.o.d"
  "/root/repo/src/http/lpt_source.cpp" "src/CMakeFiles/trim_http.dir/http/lpt_source.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/lpt_source.cpp.o.d"
  "/root/repo/src/http/onoff_source.cpp" "src/CMakeFiles/trim_http.dir/http/onoff_source.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/onoff_source.cpp.o.d"
  "/root/repo/src/http/trace_io.cpp" "src/CMakeFiles/trim_http.dir/http/trace_io.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/trace_io.cpp.o.d"
  "/root/repo/src/http/train_analyzer.cpp" "src/CMakeFiles/trim_http.dir/http/train_analyzer.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/train_analyzer.cpp.o.d"
  "/root/repo/src/http/train_workload.cpp" "src/CMakeFiles/trim_http.dir/http/train_workload.cpp.o" "gcc" "src/CMakeFiles/trim_http.dir/http/train_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
