file(REMOVE_RECURSE
  "CMakeFiles/trim_http.dir/http/http_app.cpp.o"
  "CMakeFiles/trim_http.dir/http/http_app.cpp.o.d"
  "CMakeFiles/trim_http.dir/http/lpt_source.cpp.o"
  "CMakeFiles/trim_http.dir/http/lpt_source.cpp.o.d"
  "CMakeFiles/trim_http.dir/http/onoff_source.cpp.o"
  "CMakeFiles/trim_http.dir/http/onoff_source.cpp.o.d"
  "CMakeFiles/trim_http.dir/http/trace_io.cpp.o"
  "CMakeFiles/trim_http.dir/http/trace_io.cpp.o.d"
  "CMakeFiles/trim_http.dir/http/train_analyzer.cpp.o"
  "CMakeFiles/trim_http.dir/http/train_analyzer.cpp.o.d"
  "CMakeFiles/trim_http.dir/http/train_workload.cpp.o"
  "CMakeFiles/trim_http.dir/http/train_workload.cpp.o.d"
  "libtrim_http.a"
  "libtrim_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
