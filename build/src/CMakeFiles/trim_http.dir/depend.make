# Empty dependencies file for trim_http.
# This may be replaced when dependencies are built.
