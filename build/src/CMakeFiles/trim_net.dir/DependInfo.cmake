
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/trim_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/trim_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/trim_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/trim_net.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/trim_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/CMakeFiles/trim_net.dir/net/queue.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/queue.cpp.o.d"
  "/root/repo/src/net/red_queue.cpp" "src/CMakeFiles/trim_net.dir/net/red_queue.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/red_queue.cpp.o.d"
  "/root/repo/src/net/routing.cpp" "src/CMakeFiles/trim_net.dir/net/routing.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/routing.cpp.o.d"
  "/root/repo/src/net/switch.cpp" "src/CMakeFiles/trim_net.dir/net/switch.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/switch.cpp.o.d"
  "/root/repo/src/net/trace_tap.cpp" "src/CMakeFiles/trim_net.dir/net/trace_tap.cpp.o" "gcc" "src/CMakeFiles/trim_net.dir/net/trace_tap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
