file(REMOVE_RECURSE
  "libtrim_net.a"
)
