# Empty dependencies file for trim_net.
# This may be replaced when dependencies are built.
