file(REMOVE_RECURSE
  "CMakeFiles/trim_net.dir/net/host.cpp.o"
  "CMakeFiles/trim_net.dir/net/host.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/link.cpp.o"
  "CMakeFiles/trim_net.dir/net/link.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/network.cpp.o"
  "CMakeFiles/trim_net.dir/net/network.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/node.cpp.o"
  "CMakeFiles/trim_net.dir/net/node.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/packet.cpp.o"
  "CMakeFiles/trim_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/queue.cpp.o"
  "CMakeFiles/trim_net.dir/net/queue.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/red_queue.cpp.o"
  "CMakeFiles/trim_net.dir/net/red_queue.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/routing.cpp.o"
  "CMakeFiles/trim_net.dir/net/routing.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/switch.cpp.o"
  "CMakeFiles/trim_net.dir/net/switch.cpp.o.d"
  "CMakeFiles/trim_net.dir/net/trace_tap.cpp.o"
  "CMakeFiles/trim_net.dir/net/trace_tap.cpp.o.d"
  "libtrim_net.a"
  "libtrim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
