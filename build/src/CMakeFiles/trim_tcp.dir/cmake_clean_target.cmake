file(REMOVE_RECURSE
  "libtrim_tcp.a"
)
