
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cubic.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/cubic.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/cubic.cpp.o.d"
  "/root/repo/src/tcp/d2tcp.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/d2tcp.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/d2tcp.cpp.o.d"
  "/root/repo/src/tcp/dctcp.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/dctcp.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/dctcp.cpp.o.d"
  "/root/repo/src/tcp/flow.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/flow.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/flow.cpp.o.d"
  "/root/repo/src/tcp/gip.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/gip.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/gip.cpp.o.d"
  "/root/repo/src/tcp/l2dct.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/l2dct.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/l2dct.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/reno.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/tcp_receiver.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/tcp_receiver.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/tcp_receiver.cpp.o.d"
  "/root/repo/src/tcp/tcp_sender.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/tcp_sender.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/tcp_sender.cpp.o.d"
  "/root/repo/src/tcp/vegas.cpp" "src/CMakeFiles/trim_tcp.dir/tcp/vegas.cpp.o" "gcc" "src/CMakeFiles/trim_tcp.dir/tcp/vegas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
