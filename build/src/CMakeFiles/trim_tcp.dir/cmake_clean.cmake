file(REMOVE_RECURSE
  "CMakeFiles/trim_tcp.dir/tcp/cubic.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/cubic.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/d2tcp.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/d2tcp.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/dctcp.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/dctcp.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/flow.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/flow.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/gip.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/gip.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/l2dct.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/l2dct.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/reno.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/reno.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/rtt_estimator.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/rtt_estimator.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/tcp_receiver.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/tcp_receiver.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/tcp_sender.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/tcp_sender.cpp.o.d"
  "CMakeFiles/trim_tcp.dir/tcp/vegas.cpp.o"
  "CMakeFiles/trim_tcp.dir/tcp/vegas.cpp.o.d"
  "libtrim_tcp.a"
  "libtrim_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
