# Empty compiler generated dependencies file for trim_tcp.
# This may be replaced when dependencies are built.
