file(REMOVE_RECURSE
  "CMakeFiles/trim_exp.dir/exp/concurrency_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/concurrency_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/convergence_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/convergence_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/experiment.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/experiment.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/fattree_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/fattree_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/impairment_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/impairment_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/large_scale_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/large_scale_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/multihop_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/multihop_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/properties_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/properties_scenario.cpp.o.d"
  "CMakeFiles/trim_exp.dir/exp/testbed_scenario.cpp.o"
  "CMakeFiles/trim_exp.dir/exp/testbed_scenario.cpp.o.d"
  "libtrim_exp.a"
  "libtrim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
