
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/concurrency_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/concurrency_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/concurrency_scenario.cpp.o.d"
  "/root/repo/src/exp/convergence_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/convergence_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/convergence_scenario.cpp.o.d"
  "/root/repo/src/exp/experiment.cpp" "src/CMakeFiles/trim_exp.dir/exp/experiment.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/experiment.cpp.o.d"
  "/root/repo/src/exp/fattree_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/fattree_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/fattree_scenario.cpp.o.d"
  "/root/repo/src/exp/impairment_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/impairment_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/impairment_scenario.cpp.o.d"
  "/root/repo/src/exp/large_scale_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/large_scale_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/large_scale_scenario.cpp.o.d"
  "/root/repo/src/exp/multihop_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/multihop_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/multihop_scenario.cpp.o.d"
  "/root/repo/src/exp/properties_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/properties_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/properties_scenario.cpp.o.d"
  "/root/repo/src/exp/testbed_scenario.cpp" "src/CMakeFiles/trim_exp.dir/exp/testbed_scenario.cpp.o" "gcc" "src/CMakeFiles/trim_exp.dir/exp/testbed_scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
