# Empty dependencies file for trim_exp.
# This may be replaced when dependencies are built.
