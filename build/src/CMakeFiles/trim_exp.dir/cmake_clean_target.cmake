file(REMOVE_RECURSE
  "libtrim_exp.a"
)
