
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fat_tree.cpp" "src/CMakeFiles/trim_topo.dir/topo/fat_tree.cpp.o" "gcc" "src/CMakeFiles/trim_topo.dir/topo/fat_tree.cpp.o.d"
  "/root/repo/src/topo/many_to_one.cpp" "src/CMakeFiles/trim_topo.dir/topo/many_to_one.cpp.o" "gcc" "src/CMakeFiles/trim_topo.dir/topo/many_to_one.cpp.o.d"
  "/root/repo/src/topo/multi_hop.cpp" "src/CMakeFiles/trim_topo.dir/topo/multi_hop.cpp.o" "gcc" "src/CMakeFiles/trim_topo.dir/topo/multi_hop.cpp.o.d"
  "/root/repo/src/topo/two_tier.cpp" "src/CMakeFiles/trim_topo.dir/topo/two_tier.cpp.o" "gcc" "src/CMakeFiles/trim_topo.dir/topo/two_tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/trim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/trim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
