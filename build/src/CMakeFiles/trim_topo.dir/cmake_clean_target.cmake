file(REMOVE_RECURSE
  "libtrim_topo.a"
)
