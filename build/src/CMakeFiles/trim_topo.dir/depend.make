# Empty dependencies file for trim_topo.
# This may be replaced when dependencies are built.
