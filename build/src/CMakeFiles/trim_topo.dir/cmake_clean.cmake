file(REMOVE_RECURSE
  "CMakeFiles/trim_topo.dir/topo/fat_tree.cpp.o"
  "CMakeFiles/trim_topo.dir/topo/fat_tree.cpp.o.d"
  "CMakeFiles/trim_topo.dir/topo/many_to_one.cpp.o"
  "CMakeFiles/trim_topo.dir/topo/many_to_one.cpp.o.d"
  "CMakeFiles/trim_topo.dir/topo/multi_hop.cpp.o"
  "CMakeFiles/trim_topo.dir/topo/multi_hop.cpp.o.d"
  "CMakeFiles/trim_topo.dir/topo/two_tier.cpp.o"
  "CMakeFiles/trim_topo.dir/topo/two_tier.cpp.o.d"
  "libtrim_topo.a"
  "libtrim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
