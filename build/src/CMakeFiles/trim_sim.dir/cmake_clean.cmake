file(REMOVE_RECURSE
  "CMakeFiles/trim_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/trim_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/trim_sim.dir/sim/logging.cpp.o"
  "CMakeFiles/trim_sim.dir/sim/logging.cpp.o.d"
  "CMakeFiles/trim_sim.dir/sim/random.cpp.o"
  "CMakeFiles/trim_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/trim_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/trim_sim.dir/sim/simulator.cpp.o.d"
  "libtrim_sim.a"
  "libtrim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
