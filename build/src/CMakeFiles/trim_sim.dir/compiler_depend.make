# Empty compiler generated dependencies file for trim_sim.
# This may be replaced when dependencies are built.
