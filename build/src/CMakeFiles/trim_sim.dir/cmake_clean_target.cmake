file(REMOVE_RECURSE
  "libtrim_sim.a"
)
