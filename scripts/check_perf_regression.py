#!/usr/bin/env python3
"""Gate engine throughput against the last recorded main-branch baseline.

Compares the `items_per_sec` of matching scenarios between a freshly
produced BENCH_*.json and a baseline copy restored from the CI cache
(written by the last successful run on main). Scenarios are filtered by
prefix so one bench file can carry several curves while only the gated
one (the fig08-scale events/s) fails the build.

A missing or unreadable baseline is not an error: the first run on a
fresh cache simply records the current numbers (CI re-saves them when on
main). Shared runners are noisy, so the default threshold is a generous
10% — this catches real engine regressions (an accidental O(n) scan in
the window loop), not scheduling jitter.

Exit status: 0 = no regression (or no baseline), 1 = regression, 2 = bad
invocation.
"""

import argparse
import json
import os
import sys


def load_results(path):
    with open(path) as f:
        doc = json.load(f)
    return {row["scenario"]: row for row in doc.get("results", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="BENCH_*.json produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_*.json from the cache (may be absent)")
    parser.add_argument("--scenario-prefix", default="",
                        help="only gate scenarios whose name starts with this")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop in items_per_sec (default 0.10)")
    args = parser.parse_args()

    if not os.path.exists(args.current):
        print(f"error: current results not found: {args.current}")
        return 2
    current = load_results(args.current)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; recording current numbers only")
        return 0
    try:
        baseline = load_results(args.baseline)
    except (json.JSONDecodeError, KeyError) as err:
        print(f"baseline unreadable ({err}); skipping the gate")
        return 0

    gated = sorted(s for s in current
                   if s.startswith(args.scenario_prefix) and s in baseline)
    if not gated:
        print(f"no overlapping scenarios with prefix {args.scenario_prefix!r}; "
              "nothing to gate")
        return 0

    failed = False
    for scenario in gated:
        cur = current[scenario]["items_per_sec"]
        base = baseline[scenario]["items_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if base > 0 and ratio < 1.0 - args.threshold:
            status = f"FAIL (-{(1.0 - ratio) * 100.0:.1f}% > {args.threshold * 100.0:.0f}%)"
            failed = True
        print(f"{scenario}: {cur:.3g} vs baseline {base:.3g} ev/s "
              f"({ratio:.2f}x)  {status}")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
