#!/usr/bin/env python3
"""Gate engine throughput (and memory) against the last main-branch baseline.

Compares a freshly produced BENCH_*.json against a baseline copy restored
from the CI cache (written by the last successful run on main):

  - events/s: each gated scenario's `items_per_sec` must not drop more
    than --threshold below the baseline.
  - RSS: the file-level `peak_rss_bytes` must not grow more than
    --rss-threshold above the baseline (0 disables the gate).

A third gate (--mode-gate) compares scenarios *within* the current file:
for each shard width >= 4 measured under both sync protocols, the matrix
curve must keep up with the global one. It needs no baseline.

Scenarios are filtered by prefix so one bench file can carry several
curves while only the gated ones fail the build.

Beyond the hard gate, --history-dir keeps a rolling window of the last
--history-keep result files and prints the events/s and RSS trajectory
across them, so a slow drift that never trips the single-step threshold
is still visible in the job log.

A missing or unreadable baseline is not an error: the first run on a
fresh cache simply records the current numbers (CI re-saves them when on
main). Shared runners are noisy, so the default thresholds are generous
— these catch real regressions (an accidental O(n) scan in the window
loop, a per-event allocation creeping back in), not scheduling jitter.

Exit status: 0 = no regression (or no baseline), 1 = regression, 2 = bad
invocation.
"""

import argparse
import json
import os
import shutil
import sys


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def results_by_scenario(doc):
    return {row["scenario"]: row for row in doc.get("results", [])}


def gate_throughput(current, baseline, prefix, threshold):
    gated = sorted(s for s in current
                   if s.startswith(prefix) and s in baseline)
    if not gated:
        print(f"no overlapping scenarios with prefix {prefix!r}; "
              "nothing to gate")
        return False

    failed = False
    for scenario in gated:
        cur = current[scenario]["items_per_sec"]
        base = baseline[scenario]["items_per_sec"]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if base > 0 and ratio < 1.0 - threshold:
            status = f"FAIL (-{(1.0 - ratio) * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
            failed = True
        print(f"{scenario}: {cur:.3g} vs baseline {base:.3g} ev/s "
              f"({ratio:.2f}x)  {status}")
    return failed


def gate_sync_modes(current, prefix, tolerance):
    """Within the *current* file, require the matrix sync protocol to keep
    up with the global one at every shard width where both were measured:
    matrix events/s >= global events/s * (1 - tolerance). This gate needs
    no baseline — both curves come from the same bench invocation on the
    same runner, so it is immune to cross-run machine noise."""
    widths = []
    for scenario in current:
        marker = "_global_shards_"
        if scenario.startswith(prefix) and marker in scenario:
            suffix = scenario.split(marker)[-1]
            if suffix.isdigit():
                widths.append(int(suffix))
    checked = False
    failed = False
    for width in sorted(widths):
        if width < 4:
            continue  # tiny widths are barrier-bound either way
        g = current.get(f"{prefix}_global_shards_{width}")
        m = current.get(f"{prefix}_matrix_shards_{width}")
        if g is None or m is None:
            continue
        checked = True
        g_rate = g["items_per_sec"]
        m_rate = m["items_per_sec"]
        ratio = m_rate / g_rate if g_rate > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - tolerance:
            status = (f"FAIL (matrix {(1.0 - ratio) * 100.0:.1f}% below "
                      f"global > {tolerance * 100.0:.0f}%)")
            failed = True
        print(f"{prefix} @ {width} shards: matrix {m_rate:.3g} vs global "
              f"{g_rate:.3g} ev/s ({ratio:.2f}x)  {status}")
    if not checked:
        print(f"no paired matrix/global scenarios with prefix {prefix!r}; "
              "sync-mode gate skipped")
    return failed


def gate_rss(current_doc, baseline_doc, threshold):
    cur = current_doc.get("peak_rss_bytes", 0)
    base = baseline_doc.get("peak_rss_bytes", 0)
    if threshold <= 0 or base <= 0 or cur <= 0:
        return False
    ratio = cur / base
    status = "ok"
    failed = False
    if ratio > 1.0 + threshold:
        status = f"FAIL (+{(ratio - 1.0) * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
        failed = True
    print(f"peak RSS: {cur / 1e6:.1f} MB vs baseline {base / 1e6:.1f} MB "
          f"({ratio:.2f}x)  {status}")
    return failed


def update_history(history_dir, current_path, prefix, keep):
    """Append the current results to the rolling window and print the
    events/s + RSS trajectory across everything stored."""
    os.makedirs(history_dir, exist_ok=True)
    stem = os.path.splitext(os.path.basename(current_path))[0]
    existing = sorted(f for f in os.listdir(history_dir)
                      if f.startswith(stem + ".") and f.endswith(".json"))
    next_idx = 0
    if existing:
        try:
            next_idx = max(int(f[len(stem) + 1:-5]) for f in existing) + 1
        except ValueError:
            next_idx = len(existing)
    shutil.copy(current_path, os.path.join(history_dir, f"{stem}.{next_idx:06d}.json"))
    existing = sorted(f for f in os.listdir(history_dir)
                      if f.startswith(stem + ".") and f.endswith(".json"))
    for stale in existing[:-keep]:
        os.remove(os.path.join(history_dir, stale))
        existing.remove(stale)

    print(f"\nperf trajectory over the last {len(existing)} recorded runs "
          f"(oldest first):")
    for fname in existing:
        try:
            doc = load_doc(os.path.join(history_dir, fname))
        except (json.JSONDecodeError, OSError):
            continue
        rows = results_by_scenario(doc)
        gated = sorted(s for s in rows if s.startswith(prefix))
        rates = ", ".join(f"{s}={rows[s]['items_per_sec']:.3g}" for s in gated)
        rss = doc.get("peak_rss_bytes", 0)
        print(f"  {fname}: rss={rss / 1e6:.1f}MB  {rates}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="BENCH_*.json produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="baseline BENCH_*.json from the cache (may be absent)")
    parser.add_argument("--scenario-prefix", default="",
                        help="only gate scenarios whose name starts with this")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional drop in items_per_sec (default 0.10)")
    parser.add_argument("--rss-threshold", type=float, default=0.0,
                        help="allowed fractional growth in peak_rss_bytes "
                             "(0 = RSS not gated, which is the default)")
    parser.add_argument("--mode-gate", action="append", default=[],
                        metavar="PREFIX",
                        help="require <PREFIX>_matrix_shards_<w> events/s to "
                             "stay within --mode-tolerance of "
                             "<PREFIX>_global_shards_<w> at widths >= 4 "
                             "(repeatable; compares within --current only)")
    parser.add_argument("--mode-tolerance", type=float, default=0.10,
                        help="allowed fractional shortfall of matrix vs "
                             "global events/s (default 0.10)")
    parser.add_argument("--history-dir", default="",
                        help="rolling-window directory; when set, the current "
                             "results are appended and the stored trajectory printed")
    parser.add_argument("--history-keep", type=int, default=20,
                        help="number of result files the rolling window keeps")
    args = parser.parse_args()

    if not os.path.exists(args.current):
        print(f"error: current results not found: {args.current}")
        return 2
    current_doc = load_doc(args.current)
    current = results_by_scenario(current_doc)

    failed = False
    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; recording current numbers only")
    else:
        try:
            baseline_doc = load_doc(args.baseline)
            baseline = results_by_scenario(baseline_doc)
        except (json.JSONDecodeError, KeyError) as err:
            print(f"baseline unreadable ({err}); skipping the gate")
            baseline_doc, baseline = None, None
        if baseline is not None:
            failed |= gate_throughput(current, baseline,
                                      args.scenario_prefix, args.threshold)
            failed |= gate_rss(current_doc, baseline_doc, args.rss_threshold)

    for prefix in args.mode_gate:
        failed |= gate_sync_modes(current, prefix, args.mode_tolerance)

    if args.history_dir:
        update_history(args.history_dir, args.current,
                       args.scenario_prefix, max(1, args.history_keep))

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
